#include "sig/dilithium.hpp"

#include <array>
#include <stdexcept>

#include "crypto/aes.hpp"
#include "crypto/backend/backend.hpp"
#include "crypto/ct.hpp"
#include "crypto/keccak.hpp"

namespace pqtls::sig {

namespace {

using crypto::AesCtr;
using crypto::Shake;

constexpr int kN = 256;
constexpr std::int32_t kQ = 8380417;
constexpr int kD = 13;

using Poly = std::array<std::int32_t, kN>;
using PolyVec = std::vector<Poly>;

std::int32_t freduce(std::int64_t a) {
  a %= kQ;
  if (a < 0) a += kQ;
  return static_cast<std::int32_t>(a);
}

// Centered representative in (-q/2, q/2].
std::int32_t centered(std::int32_t a) {
  return a > kQ / 2 ? a - kQ : a;
}

// NTT-domain kernels route through the runtime-selected backend
// (crypto/backend): portable reference or AVX2, bit-identical either way.

void ntt(Poly& r) { crypto::backend::dilithium_kernels().ntt(r.data()); }

void invntt(Poly& r) { crypto::backend::dilithium_kernels().invntt(r.data()); }

void poly_pointwise_acc(Poly& r, const Poly& a, const Poly& b) {
  crypto::backend::dilithium_kernels().pointwise_acc(r.data(), a.data(),
                                                     b.data());
}

void poly_add(Poly& r, const Poly& a) {
  for (int i = 0; i < kN; ++i) r[i] = freduce(static_cast<std::int64_t>(r[i]) + a[i]);
}

void poly_sub(Poly& r, const Poly& a) {
  for (int i = 0; i < kN; ++i) r[i] = freduce(static_cast<std::int64_t>(r[i]) - a[i]);
}

std::int32_t inf_norm(const Poly& a) {
  std::int32_t m = 0;
  for (auto c : a) {
    std::int32_t v = centered(c);
    if (v < 0) v = -v;
    if (v > m) m = v;
  }
  return m;
}

// Power2Round: a = a1 * 2^d + a0 with a0 in (-2^{d-1}, 2^{d-1}].
void power2round(std::int32_t a, std::int32_t& a1, std::int32_t& a0) {
  a1 = (a + (1 << (kD - 1)) - 1) >> kD;
  a0 = a - (a1 << kD);
}

// Decompose: a = a1 * alpha + a0 with a0 in (-alpha/2, alpha/2].
void decompose(std::int32_t a, std::int32_t alpha, std::int32_t& a1,
               std::int32_t& a0) {
  a1 = (a + 127) >> 7;
  if (alpha == 2 * ((kQ - 1) / 88)) {
    a1 = (a1 * 11275 + (1 << 23)) >> 24;
    a1 ^= ((43 - a1) >> 31) & a1;
  } else {  // alpha == 2 * ((q-1)/32)
    a1 = (a1 * 1025 + (1 << 21)) >> 22;
    a1 &= 15;
  }
  a0 = a - a1 * alpha;
  a0 -= (((kQ - 1) / 2 - a0) >> 31) & kQ;
}

std::int32_t use_hint(std::int32_t a, bool hint, std::int32_t gamma2) {
  std::int32_t a1, a0;
  decompose(a, 2 * gamma2, a1, a0);
  if (!hint) return a1;
  if (gamma2 == (kQ - 1) / 88) {
    if (a0 > 0) return (a1 == 43) ? 0 : a1 + 1;
    return (a1 == 0) ? 43 : a1 - 1;
  }
  if (a0 > 0) return (a1 + 1) & 15;
  return (a1 - 1) & 15;
}

// --- XOF helpers: SHAKE (default) or AES-256-CTR ("aes" variant) ---

class ExpandStream {
 public:
  // seed: 32 bytes (A) or 64 bytes (s/y); nonce distinguishes polynomials.
  ExpandStream(bool use_aes, BytesView seed, std::uint16_t nonce) {
    if (use_aes) {
      Bytes key(seed.begin(), seed.end());
      key.resize(32, 0);  // AES-256 key from the first 32 seed bytes
      Bytes iv(16, 0);
      iv[0] = static_cast<std::uint8_t>(nonce);
      iv[1] = static_cast<std::uint8_t>(nonce >> 8);
      ctr_ = std::make_unique<AesCtr>(key, iv);
    } else {
      xof_ = std::make_unique<Shake>(seed.size() == 32 ? 128 : 256);
      xof_->absorb(seed);
      std::uint8_t n[2] = {static_cast<std::uint8_t>(nonce),
                           static_cast<std::uint8_t>(nonce >> 8)};
      xof_->absorb({n, 2});
    }
  }
  void read(std::uint8_t* out, std::size_t len) {
    if (ctr_)
      ctr_->keystream(out, len);
    else
      xof_->squeeze(out, len);
  }

 private:
  std::unique_ptr<AesCtr> ctr_;
  std::unique_ptr<Shake> xof_;
};

// Uniform polynomial mod q (ExpandA), 23-bit rejection sampling.
Poly expand_a(bool use_aes, BytesView rho, int i, int j) {
  ExpandStream stream(use_aes, rho,
                      static_cast<std::uint16_t>((i << 8) | j));
  Poly out{};
  int count = 0;
  std::uint8_t buf[168];
  while (count < kN) {
    stream.read(buf, sizeof buf);
    for (std::size_t b = 0; b + 3 <= sizeof buf && count < kN; b += 3) {
      std::int32_t t = buf[b] | (std::int32_t{buf[b + 1]} << 8) |
                       ((std::int32_t{buf[b + 2]} & 0x7f) << 16);
      if (t < kQ) out[count++] = t;
    }
  }
  return out;
}

// Short secret polynomial (ExpandS), eta in {2, 4}.
Poly expand_s(bool use_aes, BytesView rho_prime, std::uint16_t nonce, int eta) {
  ExpandStream stream(use_aes, rho_prime, nonce);
  Poly out{};
  int count = 0;
  std::uint8_t buf[64];
  while (count < kN) {
    stream.read(buf, sizeof buf);
    for (std::size_t b = 0; b < sizeof buf && count < kN; ++b) {
      for (int nib = 0; nib < 2 && count < kN; ++nib) {
        int t = nib ? (buf[b] >> 4) : (buf[b] & 0xf);
        if (eta == 2) {
          if (t < 15) out[count++] = freduce(2 - (t % 5));
        } else {
          if (t < 9) out[count++] = freduce(4 - t);
        }
      }
    }
  }
  return out;
}

// Mask polynomial y (ExpandMask), coefficients in (-gamma1, gamma1].
Poly expand_mask(bool use_aes, BytesView rho_prime, std::uint16_t nonce,
                 std::int32_t gamma1) {
  ExpandStream stream(use_aes, rho_prime, nonce);
  Poly out{};
  if (gamma1 == (1 << 17)) {
    std::uint8_t buf[kN * 18 / 8];
    stream.read(buf, sizeof buf);
    for (int i = 0; i < kN / 4; ++i) {
      const std::uint8_t* b = buf + 9 * i;
      std::uint32_t t[4];
      t[0] = b[0] | (std::uint32_t{b[1]} << 8) | ((std::uint32_t{b[2]} & 0x3) << 16);
      t[1] = (b[2] >> 2) | (std::uint32_t{b[3]} << 6) |
             ((std::uint32_t{b[4]} & 0xf) << 14);
      t[2] = (b[4] >> 4) | (std::uint32_t{b[5]} << 4) |
             ((std::uint32_t{b[6]} & 0x3f) << 12);
      t[3] = (b[6] >> 6) | (std::uint32_t{b[7]} << 2) | (std::uint32_t{b[8]} << 10);
      for (int j = 0; j < 4; ++j)
        out[4 * i + j] = freduce(static_cast<std::int64_t>(gamma1) - t[j]);
    }
  } else {  // gamma1 == 2^19, 20 bits per coefficient
    std::uint8_t buf[kN * 20 / 8];
    stream.read(buf, sizeof buf);
    for (int i = 0; i < kN / 2; ++i) {
      const std::uint8_t* b = buf + 5 * i;
      std::uint32_t t0 = b[0] | (std::uint32_t{b[1]} << 8) |
                         ((std::uint32_t{b[2]} & 0xf) << 16);
      std::uint32_t t1 = (b[2] >> 4) | (std::uint32_t{b[3]} << 4) |
                         (std::uint32_t{b[4]} << 12);
      out[2 * i] = freduce(static_cast<std::int64_t>(gamma1) - t0);
      out[2 * i + 1] = freduce(static_cast<std::int64_t>(gamma1) - t1);
    }
  }
  return out;
}

// Challenge polynomial with tau +-1 coefficients (SampleInBall).
Poly sample_in_ball(BytesView c_tilde, int tau) {
  Shake xof(256);
  xof.absorb(c_tilde);
  std::uint8_t signs_buf[8];
  xof.squeeze(signs_buf, 8);
  std::uint64_t signs = load_le64(signs_buf);
  Poly c{};
  for (int i = kN - tau; i < kN; ++i) {
    std::uint8_t j;
    do {
      xof.squeeze(&j, 1);
    } while (j > i);
    c[i] = c[j];
    c[j] = (signs & 1) ? kQ - 1 : 1;
    signs >>= 1;
  }
  return c;
}

// --- packing ---

void pack_t1(Bytes& out, const Poly& t1) {  // 10 bits
  for (int i = 0; i < kN / 4; ++i) {
    const std::int32_t* a = &t1[4 * i];
    out.push_back(static_cast<std::uint8_t>(a[0]));
    out.push_back(static_cast<std::uint8_t>((a[0] >> 8) | (a[1] << 2)));
    out.push_back(static_cast<std::uint8_t>((a[1] >> 6) | (a[2] << 4)));
    out.push_back(static_cast<std::uint8_t>((a[2] >> 4) | (a[3] << 6)));
    out.push_back(static_cast<std::uint8_t>(a[3] >> 2));
  }
}

Poly unpack_t1(BytesView in) {
  Poly r{};
  for (int i = 0; i < kN / 4; ++i) {
    const std::uint8_t* b = in.data() + 5 * i;
    r[4 * i] = (b[0] | (std::int32_t{b[1]} << 8)) & 0x3ff;
    r[4 * i + 1] = ((b[1] >> 2) | (std::int32_t{b[2]} << 6)) & 0x3ff;
    r[4 * i + 2] = ((b[2] >> 4) | (std::int32_t{b[3]} << 4)) & 0x3ff;
    r[4 * i + 3] = ((b[3] >> 6) | (std::int32_t{b[4]} << 2)) & 0x3ff;
  }
  return r;
}

void pack_eta(Bytes& out, const Poly& s, int eta) {
  if (eta == 2) {  // 3 bits, value stored as eta - s
    for (int i = 0; i < kN / 8; ++i) {
      std::uint8_t t[8];
      for (int j = 0; j < 8; ++j)
        t[j] = static_cast<std::uint8_t>(2 - centered(s[8 * i + j]));
      out.push_back(static_cast<std::uint8_t>(t[0] | (t[1] << 3) | (t[2] << 6)));
      out.push_back(static_cast<std::uint8_t>((t[2] >> 2) | (t[3] << 1) |
                                              (t[4] << 4) | (t[5] << 7)));
      out.push_back(static_cast<std::uint8_t>((t[5] >> 1) | (t[6] << 2) |
                                              (t[7] << 5)));
    }
  } else {  // eta == 4, 4 bits
    for (int i = 0; i < kN / 2; ++i) {
      std::uint8_t a = static_cast<std::uint8_t>(4 - centered(s[2 * i]));
      std::uint8_t b = static_cast<std::uint8_t>(4 - centered(s[2 * i + 1]));
      out.push_back(static_cast<std::uint8_t>(a | (b << 4)));
    }
  }
}

Poly unpack_eta(BytesView in, int eta) {
  Poly r{};
  if (eta == 2) {
    for (int i = 0; i < kN / 8; ++i) {
      const std::uint8_t* b = in.data() + 3 * i;
      std::uint8_t t[8];
      t[0] = b[0] & 7;
      t[1] = (b[0] >> 3) & 7;
      t[2] = ((b[0] >> 6) | (b[1] << 2)) & 7;
      t[3] = (b[1] >> 1) & 7;
      t[4] = (b[1] >> 4) & 7;
      t[5] = ((b[1] >> 7) | (b[2] << 1)) & 7;
      t[6] = (b[2] >> 2) & 7;
      t[7] = (b[2] >> 5) & 7;
      for (int j = 0; j < 8; ++j) r[8 * i + j] = freduce(2 - t[j]);
    }
  } else {
    for (int i = 0; i < kN / 2; ++i) {
      r[2 * i] = freduce(4 - (in[i] & 0xf));
      r[2 * i + 1] = freduce(4 - (in[i] >> 4));
    }
  }
  return r;
}

void pack_t0(Bytes& out, const Poly& t0) {  // 13 bits, stored as 2^12 - t0
  for (int i = 0; i < kN / 8; ++i) {
    std::uint32_t t[8];
    for (int j = 0; j < 8; ++j)
      t[j] = static_cast<std::uint32_t>((1 << (kD - 1)) - centered(t0[8 * i + j]));
    out.push_back(static_cast<std::uint8_t>(t[0]));
    out.push_back(static_cast<std::uint8_t>((t[0] >> 8) | (t[1] << 5)));
    out.push_back(static_cast<std::uint8_t>(t[1] >> 3));
    out.push_back(static_cast<std::uint8_t>((t[1] >> 11) | (t[2] << 2)));
    out.push_back(static_cast<std::uint8_t>((t[2] >> 6) | (t[3] << 7)));
    out.push_back(static_cast<std::uint8_t>(t[3] >> 1));
    out.push_back(static_cast<std::uint8_t>((t[3] >> 9) | (t[4] << 4)));
    out.push_back(static_cast<std::uint8_t>(t[4] >> 4));
    out.push_back(static_cast<std::uint8_t>((t[4] >> 12) | (t[5] << 1)));
    out.push_back(static_cast<std::uint8_t>((t[5] >> 7) | (t[6] << 6)));
    out.push_back(static_cast<std::uint8_t>(t[6] >> 2));
    out.push_back(static_cast<std::uint8_t>((t[6] >> 10) | (t[7] << 3)));
    out.push_back(static_cast<std::uint8_t>(t[7] >> 5));
  }
}

Poly unpack_t0(BytesView in) {
  Poly r{};
  for (int i = 0; i < kN / 8; ++i) {
    const std::uint8_t* b = in.data() + 13 * i;
    std::uint32_t t[8];
    t[0] = (b[0] | (std::uint32_t{b[1]} << 8)) & 0x1fff;
    t[1] = ((b[1] >> 5) | (std::uint32_t{b[2]} << 3) |
            (std::uint32_t{b[3]} << 11)) & 0x1fff;
    t[2] = ((b[3] >> 2) | (std::uint32_t{b[4]} << 6)) & 0x1fff;
    t[3] = ((b[4] >> 7) | (std::uint32_t{b[5]} << 1) |
            (std::uint32_t{b[6]} << 9)) & 0x1fff;
    t[4] = ((b[6] >> 4) | (std::uint32_t{b[7]} << 4) |
            (std::uint32_t{b[8]} << 12)) & 0x1fff;
    t[5] = ((b[8] >> 1) | (std::uint32_t{b[9]} << 7)) & 0x1fff;
    t[6] = ((b[9] >> 6) | (std::uint32_t{b[10]} << 2) |
            (std::uint32_t{b[11]} << 10)) & 0x1fff;
    t[7] = ((b[11] >> 3) | (std::uint32_t{b[12]} << 5)) & 0x1fff;
    for (int j = 0; j < 8; ++j)
      r[8 * i + j] = freduce(static_cast<std::int64_t>(1 << (kD - 1)) - t[j]);
  }
  return r;
}

void pack_z(Bytes& out, const Poly& z, std::int32_t gamma1) {
  if (gamma1 == (1 << 17)) {  // 18 bits, stored as gamma1 - z
    for (int i = 0; i < kN / 4; ++i) {
      std::uint32_t t[4];
      for (int j = 0; j < 4; ++j)
        t[j] = static_cast<std::uint32_t>(gamma1 - centered(z[4 * i + j]));
      out.push_back(static_cast<std::uint8_t>(t[0]));
      out.push_back(static_cast<std::uint8_t>(t[0] >> 8));
      out.push_back(static_cast<std::uint8_t>((t[0] >> 16) | (t[1] << 2)));
      out.push_back(static_cast<std::uint8_t>(t[1] >> 6));
      out.push_back(static_cast<std::uint8_t>((t[1] >> 14) | (t[2] << 4)));
      out.push_back(static_cast<std::uint8_t>(t[2] >> 4));
      out.push_back(static_cast<std::uint8_t>((t[2] >> 12) | (t[3] << 6)));
      out.push_back(static_cast<std::uint8_t>(t[3] >> 2));
      out.push_back(static_cast<std::uint8_t>(t[3] >> 10));
    }
  } else {  // 20 bits
    for (int i = 0; i < kN / 2; ++i) {
      std::uint32_t t0 = static_cast<std::uint32_t>(gamma1 - centered(z[2 * i]));
      std::uint32_t t1 =
          static_cast<std::uint32_t>(gamma1 - centered(z[2 * i + 1]));
      out.push_back(static_cast<std::uint8_t>(t0));
      out.push_back(static_cast<std::uint8_t>(t0 >> 8));
      out.push_back(static_cast<std::uint8_t>((t0 >> 16) | (t1 << 4)));
      out.push_back(static_cast<std::uint8_t>(t1 >> 4));
      out.push_back(static_cast<std::uint8_t>(t1 >> 12));
    }
  }
}

Poly unpack_z(BytesView in, std::int32_t gamma1) {
  Poly r{};
  if (gamma1 == (1 << 17)) {
    for (int i = 0; i < kN / 4; ++i) {
      const std::uint8_t* b = in.data() + 9 * i;
      std::uint32_t t[4];
      t[0] = (b[0] | (std::uint32_t{b[1]} << 8) | (std::uint32_t{b[2]} << 16)) &
             0x3ffff;
      t[1] = ((b[2] >> 2) | (std::uint32_t{b[3]} << 6) |
              (std::uint32_t{b[4]} << 14)) & 0x3ffff;
      t[2] = ((b[4] >> 4) | (std::uint32_t{b[5]} << 4) |
              (std::uint32_t{b[6]} << 12)) & 0x3ffff;
      t[3] = ((b[6] >> 6) | (std::uint32_t{b[7]} << 2) |
              (std::uint32_t{b[8]} << 10)) & 0x3ffff;
      for (int j = 0; j < 4; ++j)
        r[4 * i + j] = freduce(static_cast<std::int64_t>(gamma1) - t[j]);
    }
  } else {
    for (int i = 0; i < kN / 2; ++i) {
      const std::uint8_t* b = in.data() + 5 * i;
      std::uint32_t t0 = (b[0] | (std::uint32_t{b[1]} << 8) |
                          (std::uint32_t{b[2]} << 16)) & 0xfffff;
      std::uint32_t t1 = ((b[2] >> 4) | (std::uint32_t{b[3]} << 4) |
                          (std::uint32_t{b[4]} << 12)) & 0xfffff;
      r[2 * i] = freduce(static_cast<std::int64_t>(gamma1) - t0);
      r[2 * i + 1] = freduce(static_cast<std::int64_t>(gamma1) - t1);
    }
  }
  return r;
}

void pack_w1(Bytes& out, const Poly& w1, std::int32_t gamma2) {
  if (gamma2 == (kQ - 1) / 88) {  // 6 bits
    for (int i = 0; i < kN / 4; ++i) {
      const std::int32_t* a = &w1[4 * i];
      out.push_back(static_cast<std::uint8_t>(a[0] | (a[1] << 6)));
      out.push_back(static_cast<std::uint8_t>((a[1] >> 2) | (a[2] << 4)));
      out.push_back(static_cast<std::uint8_t>((a[2] >> 4) | (a[3] << 2)));
    }
  } else {  // 4 bits
    for (int i = 0; i < kN / 2; ++i)
      out.push_back(static_cast<std::uint8_t>(w1[2 * i] | (w1[2 * i + 1] << 4)));
  }
}

// Hint encoding: omega bytes of positions + k bytes of per-poly counts.
bool pack_hints(Bytes& out, const std::vector<std::array<bool, kN>>& h,
                int omega) {
  Bytes positions;
  Bytes counts;
  for (const auto& poly : h) {
    for (int i = 0; i < kN; ++i)
      if (poly[i]) positions.push_back(static_cast<std::uint8_t>(i));
    counts.push_back(static_cast<std::uint8_t>(positions.size()));
  }
  if (positions.size() > static_cast<std::size_t>(omega)) return false;
  positions.resize(omega, 0);
  append(out, positions);
  append(out, counts);
  return true;
}

bool unpack_hints(BytesView in, int omega, int k,
                  std::vector<std::array<bool, kN>>& h) {
  h.assign(k, {});
  std::size_t prev = 0;
  for (int i = 0; i < k; ++i) {
    std::size_t cnt = in[omega + i];
    if (cnt < prev || cnt > static_cast<std::size_t>(omega)) return false;
    for (std::size_t j = prev; j < cnt; ++j) {
      // positions within a polynomial must be strictly increasing
      if (j > prev && in[j] <= in[j - 1]) return false;
      h[i][in[j]] = true;
    }
    prev = cnt;
  }
  for (std::size_t j = prev; j < static_cast<std::size_t>(omega); ++j)
    if (in[j] != 0) return false;
  return true;
}

}  // namespace

DilithiumSigner::DilithiumSigner(int level, bool use_aes)
    : level_(level), use_aes_(use_aes) {
  switch (level) {
    case 2:
      k_ = 4; l_ = 4; eta_ = 2; tau_ = 39; beta_ = 78;
      gamma1_ = 1 << 17; gamma2_ = (kQ - 1) / 88; omega_ = 80;
      break;
    case 3:
      k_ = 6; l_ = 5; eta_ = 4; tau_ = 49; beta_ = 196;
      gamma1_ = 1 << 19; gamma2_ = (kQ - 1) / 32; omega_ = 55;
      break;
    case 5:
      k_ = 8; l_ = 7; eta_ = 2; tau_ = 60; beta_ = 120;
      gamma1_ = 1 << 19; gamma2_ = (kQ - 1) / 32; omega_ = 75;
      break;
    default:
      throw std::invalid_argument("Dilithium level must be 2, 3, or 5");
  }
  name_ = "dilithium" + std::to_string(level) + (use_aes ? "_aes" : "");
}

std::size_t DilithiumSigner::public_key_size() const { return 32 + 320 * k_; }

std::size_t DilithiumSigner::secret_key_size() const {
  std::size_t eta_bytes = eta_ == 2 ? 96 : 128;
  return 3 * 32 + (k_ + l_) * eta_bytes + 416 * k_;
}

std::size_t DilithiumSigner::signature_size() const {
  std::size_t z_bytes = gamma1_ == (1 << 17) ? 576 : 640;
  return 32 + l_ * z_bytes + omega_ + k_;
}

SigKeyPair DilithiumSigner::generate_keypair(Drbg& rng) const {
  Bytes zeta = rng.bytes(32);
  Bytes expanded = crypto::shake256(zeta, 128);
  BytesView rho{expanded.data(), 32};
  BytesView rho_prime{expanded.data() + 32, 64};
  BytesView key{expanded.data() + 96, 32};

  PolyVec s1(l_), s2(k_);
  for (int i = 0; i < l_; ++i)
    s1[i] = expand_s(use_aes_, rho_prime, static_cast<std::uint16_t>(i), eta_);
  for (int i = 0; i < k_; ++i)
    s2[i] = expand_s(use_aes_, rho_prime, static_cast<std::uint16_t>(l_ + i), eta_);

  PolyVec s1_hat = s1;
  for (auto& p : s1_hat) ntt(p);

  PolyVec t(k_);
  for (int i = 0; i < k_; ++i) {
    Poly acc{};
    for (int j = 0; j < l_; ++j) {
      Poly a = expand_a(use_aes_, rho, i, j);
      poly_pointwise_acc(acc, a, s1_hat[j]);
    }
    invntt(acc);
    poly_add(acc, s2[i]);
    t[i] = acc;
  }

  PolyVec t1(k_), t0(k_);
  for (int i = 0; i < k_; ++i) {
    for (int c = 0; c < kN; ++c) {
      std::int32_t hi, lo;
      power2round(t[i][c], hi, lo);
      t1[i][c] = hi;
      t0[i][c] = freduce(lo);
    }
  }

  Bytes pk(rho.begin(), rho.end());
  for (const auto& p : t1) pack_t1(pk, p);
  Bytes tr = crypto::shake256(pk, 32);

  Bytes sk(rho.begin(), rho.end());
  append(sk, key);
  append(sk, tr);
  for (const auto& p : s1) pack_eta(sk, p, eta_);
  for (const auto& p : s2) pack_eta(sk, p, eta_);
  for (const auto& p : t0) pack_t0(sk, p);
  return {pk, sk};
}

Bytes DilithiumSigner::sign(BytesView secret_key, BytesView message,
                            Drbg& rng) const {
  (void)rng;  // deterministic signing per the round-3 default
  std::size_t eta_bytes = eta_ == 2 ? 96 : 128;
  std::size_t off = 0;
  BytesView rho = secret_key.subspan(off, 32); off += 32;
  BytesView key = secret_key.subspan(off, 32); off += 32;
  BytesView tr = secret_key.subspan(off, 32); off += 32;
  PolyVec s1(l_), s2(k_), t0(k_);
  for (int i = 0; i < l_; ++i) {
    s1[i] = unpack_eta(secret_key.subspan(off, eta_bytes), eta_);
    off += eta_bytes;
  }
  for (int i = 0; i < k_; ++i) {
    s2[i] = unpack_eta(secret_key.subspan(off, eta_bytes), eta_);
    off += eta_bytes;
  }
  for (int i = 0; i < k_; ++i) {
    t0[i] = unpack_t0(secret_key.subspan(off, 416));
    off += 416;
  }

  Bytes mu = crypto::shake256(concat(tr, message), 64);
  Bytes rho_prime = crypto::shake256(concat(key, mu), 64);

  // Precompute NTT-domain quantities.
  std::vector<PolyVec> a_hat(k_, PolyVec(l_));
  for (int i = 0; i < k_; ++i)
    for (int j = 0; j < l_; ++j) a_hat[i][j] = expand_a(use_aes_, rho, i, j);
  PolyVec s1_hat = s1, s2_hat = s2, t0_hat = t0;
  for (auto& p : s1_hat) ntt(p);
  for (auto& p : s2_hat) ntt(p);
  for (auto& p : t0_hat) ntt(p);

  for (std::uint16_t kappa = 0;; kappa = static_cast<std::uint16_t>(kappa + l_)) {
    PolyVec y(l_);
    for (int i = 0; i < l_; ++i)
      y[i] = expand_mask(use_aes_, rho_prime,
                         static_cast<std::uint16_t>(kappa + i), gamma1_);
    PolyVec y_hat = y;
    for (auto& p : y_hat) ntt(p);

    PolyVec w(k_);
    for (int i = 0; i < k_; ++i) {
      Poly acc{};
      for (int j = 0; j < l_; ++j) poly_pointwise_acc(acc, a_hat[i][j], y_hat[j]);
      invntt(acc);
      w[i] = acc;
    }

    PolyVec w1(k_);
    for (int i = 0; i < k_; ++i) {
      for (int c = 0; c < kN; ++c) {
        std::int32_t hi, lo;
        decompose(w[i][c], 2 * gamma2_, hi, lo);
        w1[i][c] = hi;
      }
    }

    Bytes w1_packed;
    for (const auto& p : w1) pack_w1(w1_packed, p, gamma2_);
    Bytes c_tilde = crypto::shake256(concat(mu, w1_packed), 32);
    Poly c = sample_in_ball(c_tilde, tau_);
    Poly c_hat = c;
    ntt(c_hat);

    // z = y + c s1
    PolyVec z(l_);
    bool reject = false;
    for (int i = 0; i < l_; ++i) {
      Poly cs1{};
      poly_pointwise_acc(cs1, c_hat, s1_hat[i]);
      invntt(cs1);
      z[i] = y[i];
      poly_add(z[i], cs1);
      if (inf_norm(z[i]) >= gamma1_ - beta_) {
        reject = true;
        break;
      }
    }
    if (reject) continue;

    // r0 = LowBits(w - c s2); check norm
    PolyVec w_cs2(k_);
    for (int i = 0; i < k_; ++i) {
      Poly cs2{};
      poly_pointwise_acc(cs2, c_hat, s2_hat[i]);
      invntt(cs2);
      w_cs2[i] = w[i];
      poly_sub(w_cs2[i], cs2);
      for (int cc = 0; cc < kN; ++cc) {
        std::int32_t hi, lo;
        decompose(w_cs2[i][cc], 2 * gamma2_, hi, lo);
        if (lo >= gamma2_ - beta_ || lo <= -(gamma2_ - beta_)) {
          reject = true;
          break;
        }
      }
      if (reject) break;
    }
    if (reject) continue;

    // hints
    std::vector<std::array<bool, kN>> h(k_);
    int hint_weight = 0;
    for (int i = 0; i < k_ && !reject; ++i) {
      Poly ct0{};
      poly_pointwise_acc(ct0, c_hat, t0_hat[i]);
      invntt(ct0);
      if (inf_norm(ct0) >= gamma2_) {
        reject = true;
        break;
      }
      for (int cc = 0; cc < kN; ++cc) {
        // r = w - cs2 + ct0; hint set iff HighBits changes
        std::int32_t r = freduce(static_cast<std::int64_t>(w_cs2[i][cc]) +
                                 ct0[cc]);
        std::int32_t hi1, lo1, hi2, lo2;
        decompose(w_cs2[i][cc], 2 * gamma2_, hi1, lo1);
        decompose(r, 2 * gamma2_, hi2, lo2);
        h[i][cc] = hi1 != hi2;
        if (h[i][cc]) ++hint_weight;
      }
    }
    if (reject || hint_weight > omega_) continue;

    Bytes sig(c_tilde.begin(), c_tilde.end());
    for (const auto& p : z) pack_z(sig, p, gamma1_);
    if (!pack_hints(sig, h, omega_)) continue;
    return sig;
  }
}

namespace {

// Public-key-only verification state, reusable across a batch: the
// expanded matrix A, the NTT of t1 * 2^d, and tr = H(pk). Everything here
// is a deterministic function of the public key alone, so hoisting it out
// of the per-signature path cannot change any verdict.
struct VerifyCtx {
  PolyVec a;       // row-major: a[i * l + j]
  PolyVec t1_hat;  // per i: NTT(t1[i] << d)
  Bytes tr;        // H(pk, 32)
};

VerifyCtx build_verify_ctx(bool use_aes, BytesView public_key, int k, int l) {
  VerifyCtx ctx;
  BytesView rho = public_key.subspan(0, 32);
  ctx.a.resize(static_cast<std::size_t>(k) * l);
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < l; ++j)
      ctx.a[static_cast<std::size_t>(i) * l + j] = expand_a(use_aes, rho, i, j);
  ctx.t1_hat.resize(k);
  for (int i = 0; i < k; ++i) {
    Poly t1 = unpack_t1(public_key.subspan(32 + 320 * i, 320));
    for (auto& cc : t1) cc = freduce(static_cast<std::int64_t>(cc) << kD);
    ntt(t1);
    ctx.t1_hat[i] = t1;
  }
  ctx.tr = crypto::shake256(public_key, 32);
  return ctx;
}

struct VerifyParams {
  int k, l, tau, beta, omega;
  std::int32_t gamma1, gamma2;
};

bool verify_one(const VerifyCtx& ctx, const VerifyParams& vp,
                BytesView message, BytesView signature) {
  std::size_t z_bytes = vp.gamma1 == (1 << 17) ? 576 : 640;
  BytesView c_tilde = signature.subspan(0, 32);
  PolyVec z(vp.l);
  for (int i = 0; i < vp.l; ++i) {
    z[i] = unpack_z(signature.subspan(32 + i * z_bytes, z_bytes), vp.gamma1);
    if (inf_norm(z[i]) >= vp.gamma1 - vp.beta) return false;
  }
  std::vector<std::array<bool, kN>> h;
  if (!unpack_hints(signature.subspan(32 + vp.l * z_bytes), vp.omega, vp.k, h))
    return false;

  Bytes mu = crypto::shake256(concat(ctx.tr, message), 64);
  Poly c = sample_in_ball(c_tilde, vp.tau);
  Poly c_hat = c;
  ntt(c_hat);

  PolyVec z_hat = z;
  for (auto& p : z_hat) ntt(p);

  PolyVec w1(vp.k);
  for (int i = 0; i < vp.k; ++i) {
    Poly acc{};
    for (int j = 0; j < vp.l; ++j)
      poly_pointwise_acc(acc, ctx.a[static_cast<std::size_t>(i) * vp.l + j],
                         z_hat[j]);
    // acc -= c * t1 * 2^d
    Poly ct1{};
    poly_pointwise_acc(ct1, c_hat, ctx.t1_hat[i]);
    for (int cc = 0; cc < kN; ++cc)
      acc[cc] = freduce(static_cast<std::int64_t>(acc[cc]) - ct1[cc]);
    invntt(acc);
    for (int cc = 0; cc < kN; ++cc)
      w1[i][cc] = use_hint(acc[cc], h[i][cc], vp.gamma2);
  }

  Bytes w1_packed;
  for (const auto& p : w1) pack_w1(w1_packed, p, vp.gamma2);
  Bytes expected = crypto::shake256(concat(mu, w1_packed), 32);
  return ct::equal(expected, c_tilde);
}

}  // namespace

bool DilithiumSigner::verify(BytesView public_key, BytesView message,
                             BytesView signature) const {
  if (public_key.size() != public_key_size() ||
      signature.size() != signature_size())
    return false;
  VerifyCtx ctx = build_verify_ctx(use_aes_, public_key, k_, l_);
  VerifyParams vp{k_, l_, tau_, beta_, omega_, gamma1_, gamma2_};
  return verify_one(ctx, vp, message, signature);
}

std::vector<std::uint8_t> DilithiumSigner::verify_batch(
    BytesView public_key, const std::vector<BytesView>& messages,
    const std::vector<BytesView>& signatures) const {
  std::size_t n = std::min(messages.size(), signatures.size());
  std::vector<std::uint8_t> out(n, 0);
  if (public_key.size() != public_key_size()) return out;
  // Matrix expansion, the t1 NTTs, and H(pk) amortize across the batch.
  VerifyCtx ctx = build_verify_ctx(use_aes_, public_key, k_, l_);
  VerifyParams vp{k_, l_, tau_, beta_, omega_, gamma1_, gamma2_};
  for (std::size_t i = 0; i < n; ++i) {
    if (signatures[i].size() != signature_size()) continue;
    out[i] = verify_one(ctx, vp, messages[i], signatures[i]) ? 1 : 0;
  }
  return out;
}

const DilithiumSigner& DilithiumSigner::dilithium2() {
  static const DilithiumSigner s(2, false);
  return s;
}
const DilithiumSigner& DilithiumSigner::dilithium3() {
  static const DilithiumSigner s(3, false);
  return s;
}
const DilithiumSigner& DilithiumSigner::dilithium5() {
  static const DilithiumSigner s(5, false);
  return s;
}
const DilithiumSigner& DilithiumSigner::dilithium2_aes() {
  static const DilithiumSigner s(2, true);
  return s;
}
const DilithiumSigner& DilithiumSigner::dilithium3_aes() {
  static const DilithiumSigner s(3, true);
  return s;
}
const DilithiumSigner& DilithiumSigner::dilithium5_aes() {
  static const DilithiumSigner s(5, true);
  return s;
}

}  // namespace pqtls::sig
