#include "sig/hybrid_sig.hpp"

#include <algorithm>

namespace pqtls::sig {

namespace {

// 4-byte big-endian length prefix for the (variable-size) classical part.
void put_len(Bytes& out, std::size_t len) {
  std::uint8_t be[4];
  store_be32(be, static_cast<std::uint32_t>(len));
  append(out, {be, 4});
}

std::size_t get_len(BytesView in) { return load_be32(in.data()); }

}  // namespace

HybridSigner::HybridSigner(const Signer& classical, const Signer& post_quantum,
                           std::string name)
    : classical_(classical), pq_(post_quantum), name_(std::move(name)) {
  level_ = std::min(classical.security_level(), pq_.security_level());
}

SigKeyPair HybridSigner::generate_keypair(Drbg& rng) const {
  SigKeyPair c = classical_.generate_keypair(rng);
  SigKeyPair p = pq_.generate_keypair(rng);
  SigKeyPair out;
  put_len(out.public_key, c.public_key.size());
  append(out.public_key, c.public_key);
  append(out.public_key, p.public_key);
  put_len(out.secret_key, c.secret_key.size());
  append(out.secret_key, c.secret_key);
  append(out.secret_key, p.secret_key);
  return out;
}

Bytes HybridSigner::sign(BytesView secret_key, BytesView message,
                         Drbg& rng) const {
  std::size_t c_len = get_len(secret_key);
  BytesView c_sk = secret_key.subspan(4, c_len);
  BytesView p_sk = secret_key.subspan(4 + c_len);
  Bytes c_sig = classical_.sign(c_sk, message, rng);
  Bytes p_sig = pq_.sign(p_sk, message, rng);
  Bytes out;
  put_len(out, c_sig.size());
  append(out, c_sig);
  append(out, p_sig);
  // Pad to the declared fixed size so wire sizes are deterministic.
  out.resize(signature_size(), 0);
  return out;
}

bool HybridSigner::verify(BytesView public_key, BytesView message,
                          BytesView signature) const {
  if (public_key.size() < 4 || signature.size() != signature_size())
    return false;
  std::size_t c_pk_len = get_len(public_key);
  if (4 + c_pk_len > public_key.size()) return false;
  BytesView c_pk = public_key.subspan(4, c_pk_len);
  BytesView p_pk = public_key.subspan(4 + c_pk_len);

  std::size_t c_sig_len = get_len(signature);
  if (4 + c_sig_len + pq_.signature_size() > signature.size()) return false;
  BytesView c_sig = signature.subspan(4, c_sig_len);
  BytesView p_sig = signature.subspan(4 + c_sig_len, pq_.signature_size());
  // Trailing padding must be zero.
  for (std::size_t i = 4 + c_sig_len + pq_.signature_size();
       i < signature.size(); ++i)
    if (signature[i] != 0) return false;

  return classical_.verify(c_pk, message, c_sig) &&
         pq_.verify(p_pk, message, p_sig);
}

}  // namespace pqtls::sig
