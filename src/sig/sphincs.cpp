#include "sig/sphincs.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/haraka.hpp"

namespace pqtls::sig {

namespace {

using crypto::Haraka;

constexpr int kW = 16;       // Winternitz parameter
constexpr int kLogW = 4;

// 32-byte hash address, spec-like field layout.
struct Adrs {
  std::uint8_t bytes[32] = {0};

  enum Type : std::uint32_t {
    kWotsHash = 0,
    kWotsPk = 1,
    kTree = 2,
    kForsTree = 3,
    kForsRoots = 4,
  };

  void set_layer(std::uint32_t v) { pqtls::store_be32(bytes, v); }
  void set_tree(std::uint64_t v) { pqtls::store_be64(bytes + 8, v); }
  void set_type(Type v) {
    pqtls::store_be32(bytes + 16, v);
    std::memset(bytes + 20, 0, 12);  // changing type zeroes the tail words
  }
  void set_keypair(std::uint32_t v) { pqtls::store_be32(bytes + 20, v); }
  void set_chain(std::uint32_t v) { pqtls::store_be32(bytes + 24, v); }
  void set_hash(std::uint32_t v) { pqtls::store_be32(bytes + 28, v); }
  void set_tree_height(std::uint32_t v) { pqtls::store_be32(bytes + 24, v); }
  void set_tree_index(std::uint32_t v) { pqtls::store_be32(bytes + 28, v); }
};

// Tweakable hashes instantiated with Haraka whose round constants are
// derived from pk.seed (the SPHINCS+-haraka construction).
struct Hashes {
  const Haraka& hk;
  std::size_t n;

  // F: one n-byte block.
  Bytes f(const Adrs& adrs, BytesView m) const {
    std::uint8_t in[64] = {0};
    std::memcpy(in, adrs.bytes, 32);
    std::memcpy(in + 32, m.data(), m.size());  // n <= 32
    std::uint8_t out[32];
    hk.haraka512(in, out);
    return Bytes(out, out + n);
  }

  // H: two n-byte blocks (tree node compression).
  Bytes h2(const Adrs& adrs, BytesView left, BytesView right) const {
    if (n == 16) {
      std::uint8_t in[64];
      std::memcpy(in, adrs.bytes, 32);
      std::memcpy(in + 32, left.data(), 16);
      std::memcpy(in + 48, right.data(), 16);
      std::uint8_t out[32];
      hk.haraka512(in, out);
      return Bytes(out, out + n);
    }
    Bytes in = concat(BytesView{adrs.bytes, 32}, left, right);
    return hk.haraka_sponge(in, n);
  }

  // T_l: arbitrary-length compression (WOTS pk, FORS roots).
  Bytes t(const Adrs& adrs, BytesView m) const {
    Bytes in = concat(BytesView{adrs.bytes, 32}, m);
    return hk.haraka_sponge(in, n);
  }

  // PRF: secret-key derivation.
  Bytes prf(BytesView sk_seed, const Adrs& adrs) const {
    std::uint8_t in[64] = {0};
    std::memcpy(in, adrs.bytes, 32);
    std::memcpy(in + 32, sk_seed.data(), sk_seed.size());
    std::uint8_t out[32];
    hk.haraka512(in, out);
    return Bytes(out, out + n);
  }

  Bytes prf_msg(BytesView sk_prf, BytesView opt_rand, BytesView m) const {
    return hk.haraka_sponge(concat(sk_prf, opt_rand, m), n);
  }

  Bytes h_msg(BytesView r, BytesView pk_root, BytesView m,
              std::size_t out_len) const {
    return hk.haraka_sponge(concat(r, pk_root, m), out_len);
  }
};

// Extract `bits` bits from a byte stream at bit offset.
std::uint64_t read_bits(BytesView data, std::size_t bit_off, int bits) {
  std::uint64_t v = 0;
  for (int i = 0; i < bits; ++i) {
    std::size_t b = bit_off + i;
    v = (v << 1) | ((data[b / 8] >> (7 - b % 8)) & 1);
  }
  return v;
}

struct WotsDigits {
  std::vector<int> digits;  // len1 + len2 base-w digits
};

WotsDigits wots_digits(BytesView msg_n, std::size_t n) {
  std::size_t len1 = 2 * n;
  WotsDigits out;
  out.digits.reserve(len1 + 3);
  for (std::size_t i = 0; i < n; ++i) {
    out.digits.push_back(msg_n[i] >> 4);
    out.digits.push_back(msg_n[i] & 0xf);
  }
  unsigned csum = 0;
  for (int d : out.digits) csum += kW - 1 - d;
  // len2 = 3 checksum digits for w=16 and n <= 32; csum < 2^10, left-align
  // to 12 bits per the spec (csum << (8 - len2*logw mod 8)).
  csum <<= 4;
  out.digits.push_back((csum >> 12) & 0xf);
  out.digits.push_back((csum >> 8) & 0xf);
  out.digits.push_back((csum >> 4) & 0xf);
  return out;
}

}  // namespace

SphincsSigner::SphincsSigner(int level, bool fast) : level_(level) {
  if (fast) {
    switch (level) {
      case 1: n_ = 16; h_ = 66; d_ = 22; a_ = 6; k_ = 33; break;
      case 3: n_ = 24; h_ = 66; d_ = 22; a_ = 8; k_ = 33; break;
      case 5: n_ = 32; h_ = 68; d_ = 17; a_ = 9; k_ = 35; break;
      default: throw std::invalid_argument("SPHINCS+ level must be 1, 3, or 5");
    }
  } else {
    switch (level) {
      case 1: n_ = 16; h_ = 63; d_ = 7; a_ = 12; k_ = 14; break;
      case 3: n_ = 24; h_ = 63; d_ = 7; a_ = 14; k_ = 17; break;
      case 5: n_ = 32; h_ = 64; d_ = 8; a_ = 14; k_ = 22; break;
      default: throw std::invalid_argument("SPHINCS+ level must be 1, 3, or 5");
    }
  }
  wots_len_ = static_cast<int>(2 * n_) + 3;
  name_ = "sphincs" + std::to_string(8 * n_) + (fast ? "" : "s");
}

std::size_t SphincsSigner::signature_size() const {
  std::size_t fors = static_cast<std::size_t>(k_) * (1 + a_) * n_;
  std::size_t ht = static_cast<std::size_t>(d_) * (wots_len_ + h_ / d_) * n_;
  return n_ + fors + ht;
}

namespace {

// WOTS chain: apply F `steps` times starting from `start` position.
Bytes chain(const Hashes& hx, Bytes x, int start, int steps, Adrs adrs) {
  for (int i = start; i < start + steps; ++i) {
    adrs.set_hash(static_cast<std::uint32_t>(i));
    x = hx.f(adrs, x);
  }
  return x;
}

// Compute a WOTS+ public key (compressed with T_len) for one leaf.
// base_adrs carries layer + tree address only.
Bytes wots_pk(const Hashes& hx, BytesView sk_seed, const Adrs& base_adrs,
              std::uint32_t keypair, int len) {
  Adrs adrs = base_adrs;
  adrs.set_type(Adrs::kWotsHash);
  adrs.set_keypair(keypair);
  Bytes all;
  all.reserve(len * hx.n);
  for (int i = 0; i < len; ++i) {
    adrs.set_chain(static_cast<std::uint32_t>(i));
    adrs.set_hash(0);
    Bytes sk = hx.prf(sk_seed, adrs);
    Bytes end = chain(hx, std::move(sk), 0, kW - 1, adrs);
    append(all, end);
  }
  Adrs pk_adrs = base_adrs;
  pk_adrs.set_type(Adrs::kWotsPk);
  pk_adrs.set_keypair(keypair);
  return hx.t(pk_adrs, all);
}

// XMSS tree: compute root and (optionally) the auth path for leaf_idx.
// tree_height levels; leaf(i) callback supplies leaf values.
template <typename LeafFn>
Bytes merkle_root(const Hashes& hx, int tree_height, std::uint32_t leaf_idx,
                  Adrs tree_adrs, LeafFn&& leaf, Bytes* auth_path) {
  std::uint32_t num_leaves = 1u << tree_height;
  std::vector<Bytes> nodes(num_leaves);
  for (std::uint32_t i = 0; i < num_leaves; ++i) nodes[i] = leaf(i);
  std::uint32_t idx = leaf_idx;
  for (int level = 0; level < tree_height; ++level) {
    if (auth_path) append(*auth_path, nodes[idx ^ 1]);
    std::uint32_t half = num_leaves >> (level + 1);
    for (std::uint32_t i = 0; i < half; ++i) {
      tree_adrs.set_tree_height(static_cast<std::uint32_t>(level + 1));
      tree_adrs.set_tree_index(i);
      nodes[i] = hx.h2(tree_adrs, nodes[2 * i], nodes[2 * i + 1]);
    }
    idx >>= 1;
  }
  return nodes[0];
}

// Recompute a Merkle root from a leaf and its auth path.
Bytes root_from_auth(const Hashes& hx, Bytes node, std::uint32_t leaf_idx,
                     int tree_height, BytesView auth, Adrs tree_adrs) {
  std::uint32_t idx = leaf_idx;
  for (int level = 0; level < tree_height; ++level) {
    BytesView sibling = auth.subspan(level * hx.n, hx.n);
    tree_adrs.set_tree_height(static_cast<std::uint32_t>(level + 1));
    tree_adrs.set_tree_index(idx >> 1);
    if (idx & 1)
      node = hx.h2(tree_adrs, sibling, node);
    else
      node = hx.h2(tree_adrs, node, sibling);
    idx >>= 1;
  }
  return node;
}

}  // namespace

SigKeyPair SphincsSigner::generate_keypair(Drbg& rng) const {
  Bytes sk_seed = rng.bytes(n_);
  Bytes sk_prf = rng.bytes(n_);
  Bytes pk_seed = rng.bytes(n_);

  Haraka hk(pk_seed);
  Hashes hx{hk, n_};
  int tree_height = h_ / d_;

  // Root of the top-layer XMSS tree.
  Adrs adrs;
  adrs.set_layer(static_cast<std::uint32_t>(d_ - 1));
  adrs.set_tree(0);
  auto leaf = [&](std::uint32_t i) {
    return wots_pk(hx, sk_seed, adrs, i, wots_len_);
  };
  Adrs tree_adrs = adrs;
  tree_adrs.set_type(Adrs::kTree);
  Bytes root = merkle_root(hx, tree_height, 0, tree_adrs, leaf, nullptr);

  SigKeyPair kp;
  kp.public_key = concat(pk_seed, root);
  kp.secret_key = concat(sk_seed, sk_prf, pk_seed, root);
  return kp;
}

Bytes SphincsSigner::sign(BytesView secret_key, BytesView message,
                          Drbg& rng) const {
  BytesView sk_seed = secret_key.subspan(0, n_);
  BytesView sk_prf = secret_key.subspan(n_, n_);
  BytesView pk_seed = secret_key.subspan(2 * n_, n_);
  BytesView pk_root = secret_key.subspan(3 * n_, n_);

  Haraka hk(pk_seed);
  Hashes hx{hk, n_};
  int tree_height = h_ / d_;

  Bytes opt_rand = rng.bytes(n_);
  Bytes r = hx.prf_msg(sk_prf, opt_rand, message);

  // Message digest split: k*a FORS bits, h - h/d tree bits, h/d leaf bits.
  std::size_t md_bytes = (static_cast<std::size_t>(k_) * a_ + 7) / 8;
  std::size_t tree_bytes = (h_ - tree_height + 7) / 8;
  std::size_t leaf_bytes = (tree_height + 7) / 8;
  Bytes digest = hx.h_msg(r, concat(pk_seed, pk_root), message,
                          md_bytes + tree_bytes + leaf_bytes);
  BytesView md{digest.data(), md_bytes};
  std::uint64_t idx_tree =
      read_bits({digest.data() + md_bytes, tree_bytes}, 0, 8 * tree_bytes) &
      ((h_ - tree_height) == 64 ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << (h_ - tree_height)) - 1));
  std::uint32_t idx_leaf = static_cast<std::uint32_t>(
      read_bits({digest.data() + md_bytes + tree_bytes, leaf_bytes}, 0,
                8 * leaf_bytes) &
      ((std::uint64_t{1} << tree_height) - 1));

  Bytes signature = r;

  // ---- FORS ----
  Adrs fors_adrs;
  fors_adrs.set_layer(0);
  fors_adrs.set_tree(idx_tree);
  fors_adrs.set_type(Adrs::kForsTree);
  fors_adrs.set_keypair(idx_leaf);

  Bytes fors_roots;
  for (int t = 0; t < k_; ++t) {
    std::uint32_t leaf_i = static_cast<std::uint32_t>(
        read_bits(md, static_cast<std::size_t>(t) * a_, a_));
    std::uint32_t offset = static_cast<std::uint32_t>(t) << a_;
    // Secret leaf value.
    Adrs sk_adrs = fors_adrs;
    sk_adrs.set_tree_height(0);
    sk_adrs.set_tree_index(offset + leaf_i);
    Bytes sk = hx.prf(sk_seed, sk_adrs);
    append(signature, sk);
    // Tree with auth path.
    auto leaf = [&](std::uint32_t i) {
      Adrs l_adrs = fors_adrs;
      l_adrs.set_tree_height(0);
      l_adrs.set_tree_index(offset + i);
      Bytes lsk = hx.prf(sk_seed, l_adrs);
      return hx.f(l_adrs, lsk);
    };
    // Give each FORS tree its own index space within the shared adrs by
    // offsetting tree_index; merkle_root resets height/index per level.
    Adrs t_adrs = fors_adrs;
    Bytes auth;
    Bytes root = merkle_root(hx, a_, leaf_i, t_adrs, leaf, &auth);
    append(signature, auth);
    append(fors_roots, root);
  }
  Adrs fors_pk_adrs = fors_adrs;
  fors_pk_adrs.set_type(Adrs::kForsRoots);
  fors_pk_adrs.set_keypair(idx_leaf);
  Bytes node = hx.t(fors_pk_adrs, fors_roots);

  // ---- hypertree ----
  std::uint64_t tree = idx_tree;
  std::uint32_t leaf_idx = idx_leaf;
  for (int layer = 0; layer < d_; ++layer) {
    Adrs adrs;
    adrs.set_layer(static_cast<std::uint32_t>(layer));
    adrs.set_tree(tree);

    // WOTS sign `node` with the leaf's key.
    WotsDigits dg = wots_digits(node, n_);
    Adrs wots_adrs = adrs;
    wots_adrs.set_type(Adrs::kWotsHash);
    wots_adrs.set_keypair(leaf_idx);
    for (int i = 0; i < wots_len_; ++i) {
      wots_adrs.set_chain(static_cast<std::uint32_t>(i));
      wots_adrs.set_hash(0);
      Bytes sk = hx.prf(sk_seed, wots_adrs);
      append(signature, chain(hx, std::move(sk), 0, dg.digits[i], wots_adrs));
    }

    // Auth path + root of this XMSS tree.
    auto leaf = [&](std::uint32_t i) {
      return wots_pk(hx, sk_seed, adrs, i, wots_len_);
    };
    Adrs tree_adrs = adrs;
    tree_adrs.set_type(Adrs::kTree);
    Bytes auth;
    node = merkle_root(hx, tree_height, leaf_idx, tree_adrs, leaf, &auth);
    append(signature, auth);

    leaf_idx = static_cast<std::uint32_t>(tree & ((1u << tree_height) - 1));
    tree >>= tree_height;
  }
  return signature;
}

bool SphincsSigner::verify(BytesView public_key, BytesView message,
                           BytesView signature) const {
  if (public_key.size() != public_key_size() ||
      signature.size() != signature_size())
    return false;
  BytesView pk_seed = public_key.subspan(0, n_);
  BytesView pk_root = public_key.subspan(n_, n_);

  Haraka hk(pk_seed);
  Hashes hx{hk, n_};
  int tree_height = h_ / d_;

  BytesView r = signature.subspan(0, n_);
  std::size_t off = n_;

  std::size_t md_bytes = (static_cast<std::size_t>(k_) * a_ + 7) / 8;
  std::size_t tree_bytes = (h_ - tree_height + 7) / 8;
  std::size_t leaf_bytes = (tree_height + 7) / 8;
  Bytes digest = hx.h_msg(r, concat(pk_seed, pk_root), message,
                          md_bytes + tree_bytes + leaf_bytes);
  BytesView md{digest.data(), md_bytes};
  std::uint64_t idx_tree =
      read_bits({digest.data() + md_bytes, tree_bytes}, 0, 8 * tree_bytes) &
      ((h_ - tree_height) == 64 ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << (h_ - tree_height)) - 1));
  std::uint32_t idx_leaf = static_cast<std::uint32_t>(
      read_bits({digest.data() + md_bytes + tree_bytes, leaf_bytes}, 0,
                8 * leaf_bytes) &
      ((std::uint64_t{1} << tree_height) - 1));

  // ---- FORS ----
  Adrs fors_adrs;
  fors_adrs.set_layer(0);
  fors_adrs.set_tree(idx_tree);
  fors_adrs.set_type(Adrs::kForsTree);
  fors_adrs.set_keypair(idx_leaf);

  Bytes fors_roots;
  for (int t = 0; t < k_; ++t) {
    std::uint32_t leaf_i = static_cast<std::uint32_t>(
        read_bits(md, static_cast<std::size_t>(t) * a_, a_));
    std::uint32_t offset = static_cast<std::uint32_t>(t) << a_;
    BytesView sk = signature.subspan(off, n_);
    off += n_;
    Adrs l_adrs = fors_adrs;
    l_adrs.set_tree_height(0);
    l_adrs.set_tree_index(offset + leaf_i);
    Bytes node = hx.f(l_adrs, sk);
    BytesView auth = signature.subspan(off, static_cast<std::size_t>(a_) * n_);
    off += static_cast<std::size_t>(a_) * n_;
    node = root_from_auth(hx, std::move(node), leaf_i, a_, auth, fors_adrs);
    append(fors_roots, node);
  }
  Adrs fors_pk_adrs = fors_adrs;
  fors_pk_adrs.set_type(Adrs::kForsRoots);
  fors_pk_adrs.set_keypair(idx_leaf);
  Bytes node = hx.t(fors_pk_adrs, fors_roots);

  // ---- hypertree ----
  std::uint64_t tree = idx_tree;
  std::uint32_t leaf_idx = idx_leaf;
  for (int layer = 0; layer < d_; ++layer) {
    Adrs adrs;
    adrs.set_layer(static_cast<std::uint32_t>(layer));
    adrs.set_tree(tree);

    WotsDigits dg = wots_digits(node, n_);
    Adrs wots_adrs = adrs;
    wots_adrs.set_type(Adrs::kWotsHash);
    wots_adrs.set_keypair(leaf_idx);
    Bytes all;
    all.reserve(static_cast<std::size_t>(wots_len_) * n_);
    for (int i = 0; i < wots_len_; ++i) {
      wots_adrs.set_chain(static_cast<std::uint32_t>(i));
      Bytes part(signature.begin() + off, signature.begin() + off + n_);
      off += n_;
      append(all, chain(hx, std::move(part), dg.digits[i],
                        kW - 1 - dg.digits[i], wots_adrs));
    }
    Adrs pk_adrs = wots_adrs;
    pk_adrs.set_type(Adrs::kWotsPk);
    pk_adrs.set_keypair(leaf_idx);
    Bytes wots_pk_val = hx.t(pk_adrs, all);

    Adrs tree_adrs = adrs;
    tree_adrs.set_type(Adrs::kTree);
    BytesView auth =
        signature.subspan(off, static_cast<std::size_t>(tree_height) * n_);
    off += static_cast<std::size_t>(tree_height) * n_;
    node = root_from_auth(hx, std::move(wots_pk_val), leaf_idx, tree_height,
                          auth, tree_adrs);

    leaf_idx = static_cast<std::uint32_t>(tree & ((1u << tree_height) - 1));
    tree >>= tree_height;
  }
  return ct::equal(node, pk_root);
}

const SphincsSigner& SphincsSigner::sphincs128() {
  static const SphincsSigner s(1);
  return s;
}
const SphincsSigner& SphincsSigner::sphincs192() {
  static const SphincsSigner s(3);
  return s;
}
const SphincsSigner& SphincsSigner::sphincs256() {
  static const SphincsSigner s(5);
  return s;
}
const SphincsSigner& SphincsSigner::sphincs128s() {
  static const SphincsSigner s(1, /*fast=*/false);
  return s;
}
const SphincsSigner& SphincsSigner::sphincs192s() {
  static const SphincsSigner s(3, /*fast=*/false);
  return s;
}
const SphincsSigner& SphincsSigner::sphincs256s() {
  static const SphincsSigner s(5, /*fast=*/false);
  return s;
}

}  // namespace pqtls::sig
