// Falcon NTRU-lattice signatures (falcon512 / falcon1024). Keygen solves the
// NTRU equation f*G - g*F = q with the recursive field-norm tower solver and
// iterated scaled-FFT Babai reduction; verification is exact arithmetic mod
// q = 12289; signing uses Babai round-off on the secret basis in FFT
// representation (a documented simplification of the reference ffSampling —
// identical sizes and asymptotics, see DESIGN.md fidelity notes).
#pragma once

#include "sig/sig.hpp"

namespace pqtls::sig {

class FalconSigner final : public Signer {
 public:
  /// degree must be 512 or 1024.
  explicit FalconSigner(int degree);

  const std::string& name() const override { return name_; }
  int security_level() const override { return level_; }
  bool is_post_quantum() const override { return true; }

  std::size_t public_key_size() const override { return 1 + n_ * 14 / 8; }
  std::size_t secret_key_size() const override { return 1 + 8 * n_; }
  /// Fixed padded signature size (666 / 1280), the TLS wire format.
  std::size_t signature_size() const override { return sig_bytes_; }

  SigKeyPair generate_keypair(Drbg& rng) const override;
  Bytes sign(BytesView secret_key, BytesView message, Drbg& rng) const override;
  bool verify(BytesView public_key, BytesView message,
              BytesView signature) const override;

  static const FalconSigner& falcon512();
  static const FalconSigner& falcon1024();

 private:
  std::string name_;
  int level_;
  std::size_t n_;
  std::size_t sig_bytes_;
  std::int64_t beta_squared_;
};

}  // namespace pqtls::sig
