// CRYSTALS-Dilithium (round 3) signatures at NIST levels 2/3/5, with the
// "_aes" variants that swap the SHAKE-based expansion for AES-256-CTR — both
// families are measured by the paper (dilithium2 vs dilithium2_aes, ...).
#pragma once

#include "sig/sig.hpp"

namespace pqtls::sig {

class DilithiumSigner final : public Signer {
 public:
  /// level in {2, 3, 5}; use_aes selects the AES-CTR expansion variant.
  DilithiumSigner(int level, bool use_aes);

  const std::string& name() const override { return name_; }
  int security_level() const override { return level_; }
  bool is_post_quantum() const override { return true; }

  std::size_t public_key_size() const override;
  std::size_t secret_key_size() const override;
  std::size_t signature_size() const override;

  SigKeyPair generate_keypair(Drbg& rng) const override;
  Bytes sign(BytesView secret_key, BytesView message, Drbg& rng) const override;
  bool verify(BytesView public_key, BytesView message,
              BytesView signature) const override;
  /// Amortizes matrix expansion, the t1 NTTs, and H(pk) across the batch;
  /// verdicts match sequential verify() exactly.
  std::vector<std::uint8_t> verify_batch(
      BytesView public_key, const std::vector<BytesView>& messages,
      const std::vector<BytesView>& signatures) const override;

  static const DilithiumSigner& dilithium2();
  static const DilithiumSigner& dilithium3();
  static const DilithiumSigner& dilithium5();
  static const DilithiumSigner& dilithium2_aes();
  static const DilithiumSigner& dilithium3_aes();
  static const DilithiumSigner& dilithium5_aes();

 private:
  std::string name_;
  int level_;
  int k_, l_, eta_, tau_, beta_, omega_;
  std::int32_t gamma1_, gamma2_;
  bool use_aes_;
};

}  // namespace pqtls::sig
