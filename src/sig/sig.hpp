// Uniform signature-algorithm interface. Covers the paper's 22 SA
// configurations: RSA, Falcon, Dilithium (+_aes), SPHINCS+, and the
// ECDSA/RSA-hybrid composites.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/drbg.hpp"

namespace pqtls::sig {

using crypto::Drbg;

struct SigKeyPair {
  Bytes public_key;
  Bytes secret_key;
};

class Signer {
 public:
  virtual ~Signer() = default;

  /// Registry name as used by the paper, e.g. "dilithium2", "rsa:2048".
  virtual const std::string& name() const = 0;
  virtual int security_level() const = 0;
  virtual bool is_hybrid() const { return false; }
  virtual bool is_post_quantum() const = 0;

  virtual std::size_t public_key_size() const = 0;
  virtual std::size_t secret_key_size() const = 0;
  /// Maximum signature size; variable-size schemes (Falcon, ECDSA) may
  /// produce shorter signatures.
  virtual std::size_t signature_size() const = 0;

  virtual SigKeyPair generate_keypair(Drbg& rng) const = 0;
  virtual Bytes sign(BytesView secret_key, BytesView message,
                     Drbg& rng) const = 0;
  virtual bool verify(BytesView public_key, BytesView message,
                      BytesView signature) const = 0;

  /// Batch verification under one public key: element i is 1 iff
  /// verify(public_key, messages[i], signatures[i]). Implementations may
  /// amortize per-key work (matrix expansion, key hashing) across the
  /// batch; results match sequential verification exactly.
  virtual std::vector<std::uint8_t> verify_batch(
      BytesView public_key, const std::vector<BytesView>& messages,
      const std::vector<BytesView>& signatures) const {
    std::size_t n = std::min(messages.size(), signatures.size());
    std::vector<std::uint8_t> out(n, 0);
    for (std::size_t i = 0; i < n; ++i)
      out[i] = verify(public_key, messages[i], signatures[i]) ? 1 : 0;
    return out;
  }
};

/// All signature algorithms measured by the paper (Table 2b) plus the
/// rsa3072_dilithium2 hybrid from Table 4b.
const std::vector<const Signer*>& all_signers();
const Signer* find_signer(const std::string& name);

}  // namespace pqtls::sig
