#include "sig/falcon.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <complex>
#include <stdexcept>
#include <vector>

#include "crypto/bignum.hpp"
#include "crypto/keccak.hpp"

namespace pqtls::sig {

namespace {

using crypto::BigInt;
using crypto::Shake;

constexpr std::int32_t kQ = 12289;

// ---------------------------------------------------------------------------
// Signed big integers (sign + magnitude over BigInt) — the tower solver's
// coefficient domain.
// ---------------------------------------------------------------------------

struct SInt {
  bool neg = false;
  BigInt mag;

  SInt() = default;
  explicit SInt(std::int64_t v) {
    neg = v < 0;
    mag = BigInt(static_cast<std::uint64_t>(neg ? -v : v));
  }
  bool is_zero() const { return mag.is_zero(); }
  std::size_t bit_length() const { return mag.bit_length(); }

  SInt operator-() const {
    SInt out = *this;
    if (!out.is_zero()) out.neg = !out.neg;
    return out;
  }
};

SInt sadd(const SInt& a, const SInt& b) {
  SInt out;
  if (a.neg == b.neg) {
    out.neg = a.neg;
    out.mag = a.mag + b.mag;
  } else if (BigInt::cmp(a.mag, b.mag) >= 0) {
    out.neg = a.neg;
    out.mag = a.mag - b.mag;
  } else {
    out.neg = b.neg;
    out.mag = b.mag - a.mag;
  }
  if (out.mag.is_zero()) out.neg = false;
  return out;
}

SInt ssub(const SInt& a, const SInt& b) { return sadd(a, -b); }

SInt smul(const SInt& a, const SInt& b) {
  SInt out;
  out.mag = a.mag * b.mag;
  out.neg = !out.mag.is_zero() && (a.neg != b.neg);
  return out;
}

SInt sshift(const SInt& a, std::size_t bits) {
  SInt out;
  out.mag = a.mag << bits;
  out.neg = a.neg;
  return out;
}

/// Approximate value as v * 2^exp with |v| in [0.5, 1) (0 for zero).
double to_scaled_double(const SInt& a, long exp) {
  if (a.is_zero()) return 0.0;
  long bl = static_cast<long>(a.bit_length());
  // value ~= mag / 2^exp; take top 53 bits.
  long shift = bl - 53;
  double v;
  if (shift > 0) {
    BigInt top = a.mag >> static_cast<std::size_t>(shift);
    v = static_cast<double>(top.low_u64()) * std::ldexp(1.0, static_cast<int>(shift - exp));
  } else {
    v = static_cast<double>(a.mag.low_u64()) * std::ldexp(1.0, static_cast<int>(-exp));
  }
  return a.neg ? -v : v;
}

// ---------------------------------------------------------------------------
// Complex FFT on the negacyclic ring R[x]/(x^d + 1): evaluate at the odd
// 2d-th roots of unity. We twist by w^j (w = e^{i pi / d}) and run a
// standard iterative DFT of size d, keeping the first half of the spectrum.
// ---------------------------------------------------------------------------

using Cplx = std::complex<double>;

void dft_inplace(std::vector<Cplx>& a, bool inverse) {
  std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    double ang = 2.0 * M_PI / static_cast<double>(len) * (inverse ? -1 : 1);
    Cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        Cplx u = a[i + j];
        Cplx v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

/// Negacyclic FFT: real coefficients -> d complex evaluations at
/// w^{2k+1}. (We keep all d values; conjugate symmetry is not exploited.)
std::vector<Cplx> fft_nega(const std::vector<double>& f) {
  std::size_t d = f.size();
  std::vector<Cplx> a(d);
  for (std::size_t j = 0; j < d; ++j) {
    double ang = M_PI * static_cast<double>(j) / static_cast<double>(d);
    a[j] = f[j] * Cplx(std::cos(ang), std::sin(ang));  // twist by w^j
  }
  dft_inplace(a, false);
  return a;
}

/// Inverse negacyclic FFT back to real coefficients.
std::vector<double> ifft_nega(std::vector<Cplx> a) {
  std::size_t d = a.size();
  dft_inplace(a, true);
  std::vector<double> f(d);
  for (std::size_t j = 0; j < d; ++j) {
    double ang = -M_PI * static_cast<double>(j) / static_cast<double>(d);
    Cplx v = a[j] * Cplx(std::cos(ang), std::sin(ang));  // untwist
    f[j] = v.real();
  }
  return f;
}

// ---------------------------------------------------------------------------
// Tower solver for the NTRU equation.
// ---------------------------------------------------------------------------

using SPoly = std::vector<SInt>;  // element of Z[x]/(x^d + 1)

// Negacyclic convolution c = a * b over Z[x]/(x^d + 1).
SPoly nega_mul(const SPoly& a, const SPoly& b) {
  std::size_t d = a.size();
  SPoly c(d);
  for (std::size_t i = 0; i < d; ++i) {
    if (a[i].is_zero()) continue;
    for (std::size_t j = 0; j < d; ++j) {
      if (b[j].is_zero()) continue;
      SInt prod = smul(a[i], b[j]);
      std::size_t k = i + j;
      if (k >= d) {
        c[k - d] = ssub(c[k - d], prod);  // x^d = -1
      } else {
        c[k] = sadd(c[k], prod);
      }
    }
  }
  return c;
}

// Galois conjugate a(-x).
SPoly conj_x(const SPoly& a) {
  SPoly out = a;
  for (std::size_t i = 1; i < out.size(); i += 2) out[i] = -out[i];
  return out;
}

// Field norm: N(f)(y) with f(x) = e(x^2) + x o(x^2); N(f) = e^2 - y o^2.
SPoly field_norm(const SPoly& f) {
  std::size_t d = f.size() / 2;
  SPoly e(d), o(d);
  for (std::size_t i = 0; i < d; ++i) {
    e[i] = f[2 * i];
    o[i] = f[2 * i + 1];
  }
  SPoly e2 = nega_mul(e, e);
  SPoly o2 = nega_mul(o, o);
  // subtract y * o^2 (multiply by y with negacyclic wrap)
  SPoly out(d);
  for (std::size_t i = 0; i < d; ++i) {
    SInt shifted = (i == 0) ? -o2[d - 1] : o2[i - 1];
    out[i] = ssub(e2[i], shifted);
  }
  return out;
}

// Lift F'(y) at y = x^2 and multiply by g(-x): size doubles.
SPoly lift_mul(const SPoly& f_half, const SPoly& g_full) {
  std::size_t d = g_full.size();
  SPoly lifted(d);
  for (std::size_t i = 0; i < d / 2; ++i) lifted[2 * i] = f_half[i];
  return nega_mul(lifted, conj_x(g_full));
}

long max_bitlen(const SPoly& a) {
  long m = 0;
  for (const auto& c : a) m = std::max(m, static_cast<long>(c.bit_length()));
  return m;
}

// F -= (k * f) << shift, negacyclic, with small integer k coefficients.
void sub_scaled(SPoly& f_big, const SPoly& f_small,
                const std::vector<std::int64_t>& k, std::size_t shift) {
  std::size_t d = f_big.size();
  for (std::size_t i = 0; i < d; ++i) {
    if (k[i] == 0) continue;
    SInt ki(k[i]);
    for (std::size_t j = 0; j < d; ++j) {
      if (f_small[j].is_zero()) continue;
      SInt prod = sshift(smul(ki, f_small[j]), shift);
      std::size_t idx = i + j;
      if (idx >= d) {
        f_big[idx - d] = sadd(f_big[idx - d], prod);  // minus from wrap, minus from sub
      } else {
        f_big[idx] = ssub(f_big[idx], prod);
      }
    }
  }
}

// Reduce (F, G) against (f, g): Babai nearest-plane with scaled FFT.
void babai_reduce(const SPoly& f, const SPoly& g, SPoly& F, SPoly& G) {
  std::size_t d = f.size();
  long ef = std::max(max_bitlen(f), max_bitlen(g));
  // Precompute FFT of f, g scaled to ~1.
  std::vector<double> fd(d), gd(d);
  for (std::size_t i = 0; i < d; ++i) {
    fd[i] = to_scaled_double(f[i], ef);
    gd[i] = to_scaled_double(g[i], ef);
  }
  auto f_fft = fft_nega(fd);
  auto g_fft = fft_nega(gd);
  std::vector<Cplx> denom(d);
  for (std::size_t i = 0; i < d; ++i)
    denom[i] = f_fft[i] * std::conj(f_fft[i]) + g_fft[i] * std::conj(g_fft[i]);

  for (int iter = 0; iter < 300; ++iter) {
    long eF = std::max(max_bitlen(F), max_bitlen(G));
    long diff = eF - ef;  // k_true ~ k_real * 2^{diff}

    std::vector<double> Fd(d), Gd(d);
    for (std::size_t i = 0; i < d; ++i) {
      Fd[i] = to_scaled_double(F[i], eF);
      Gd[i] = to_scaled_double(G[i], eF);
    }
    auto F_fft = fft_nega(Fd);
    auto G_fft = fft_nega(Gd);
    std::vector<Cplx> k_fft(d);
    for (std::size_t i = 0; i < d; ++i) {
      Cplx num = F_fft[i] * std::conj(f_fft[i]) + G_fft[i] * std::conj(g_fft[i]);
      k_fft[i] = num / denom[i];
    }
    // Extract up to 40 bits of k per pass; the rest stays in the shift.
    std::vector<double> k_real = ifft_nega(std::move(k_fft));
    long extract = std::min<long>(diff, 40);
    std::size_t sub_shift = static_cast<std::size_t>(std::max<long>(diff - extract, 0));
    std::vector<std::int64_t> k(d);
    bool any = false;
    for (std::size_t i = 0; i < d; ++i) {
      double scaled = std::ldexp(k_real[i], static_cast<int>(extract));
      if (!(std::fabs(scaled) < 9.0e15)) return;  // degenerate basis; give up
      k[i] = std::llround(scaled);
      if (k[i] != 0) any = true;
    }
    if (!any) return;  // fully reduced
    sub_scaled(F, f, k, sub_shift);
    sub_scaled(G, g, k, sub_shift);
  }
}

// Solve f*G - g*F = q recursively. Returns false if not solvable.
bool solve_ntru(const SPoly& f, const SPoly& g, SPoly& F, SPoly& G) {
  std::size_t d = f.size();
  if (d == 1) {
    // xgcd over Z: u f0 + v g0 = gcd.
    const SInt& f0 = f[0];
    const SInt& g0 = g[0];
    if (f0.is_zero() || g0.is_zero()) return false;
    // Iterative extended Euclid on magnitudes.
    BigInt r0 = f0.mag, r1 = g0.mag;
    // Track coefficients as SInt.
    SInt s0(1), s1(0), t0(0), t1(1);
    while (!r1.is_zero()) {
      auto dm = BigInt::divmod(r0, r1);
      SInt qq;
      qq.mag = dm.quotient;
      r0 = r1;
      r1 = dm.remainder;
      SInt s2 = ssub(s0, smul(qq, s1));
      SInt t2 = ssub(t0, smul(qq, t1));
      s0 = s1; s1 = s2;
      t0 = t1; t1 = t2;
    }
    if (!(r0 == BigInt{1})) return false;
    // s0 * |f0| + t0 * |g0| = 1; fix signs: u*f0 + v*g0 = 1.
    SInt u = f0.neg ? -s0 : s0;
    SInt v = g0.neg ? -t0 : t0;
    // G = q*u, F = -q*v satisfies f G - g F = q(uf + vg) = q.
    SInt q_s(kQ);
    F.assign(1, -smul(q_s, v));
    G.assign(1, smul(q_s, u));
    return true;
  }

  SPoly fn = field_norm(f);
  SPoly gn = field_norm(g);
  SPoly Fh, Gh;
  if (!solve_ntru(fn, gn, Fh, Gh)) return false;
  // F = F'(x^2) g(-x); G = G'(x^2) f(-x).
  F = lift_mul(Fh, g);
  G = lift_mul(Gh, f);
  babai_reduce(f, g, F, G);
  return true;
}

// ---------------------------------------------------------------------------
// Arithmetic mod q on small polynomials.
// ---------------------------------------------------------------------------

using QPoly = std::vector<std::int32_t>;  // coefficients in [0, q)

std::int32_t qreduce(std::int64_t v) {
  v %= kQ;
  if (v < 0) v += kQ;
  return static_cast<std::int32_t>(v);
}

// Negacyclic schoolbook product mod q.
QPoly qmul(const QPoly& a, const QPoly& b) {
  std::size_t d = a.size();
  QPoly c(d, 0);
  std::vector<std::int64_t> acc(d, 0);
  for (std::size_t i = 0; i < d; ++i) {
    if (a[i] == 0) continue;
    std::int64_t ai = a[i];
    for (std::size_t j = 0; j < d; ++j) {
      std::size_t k = i + j;
      std::int64_t prod = ai * b[j];
      if (k >= d)
        acc[k - d] -= prod;
      else
        acc[k] += prod;
    }
    // Prevent int64 overflow: reduce periodically (q^2 * d fits, but stay safe).
    if ((i & 63) == 63)
      for (std::size_t k = 0; k < d; ++k) acc[k] %= kQ;
  }
  for (std::size_t k = 0; k < d; ++k) c[k] = qreduce(acc[k]);
  return c;
}

// Inverse of f mod q via NTT (q = 12289, 2d | q - 1).
struct QNtt {
  std::size_t d;
  std::vector<std::int32_t> psi_pow;      // psi^i, i < 2d
  std::vector<std::int32_t> psi_inv_pow;  // psi^{-i}
  std::int32_t d_inv;

  explicit QNtt(std::size_t degree) : d(degree) {
    auto pow_mod = [](std::int64_t base, std::int64_t e) {
      std::int64_t r = 1;
      base %= kQ;
      while (e > 0) {
        if (e & 1) r = r * base % kQ;
        base = base * base % kQ;
        e >>= 1;
      }
      return static_cast<std::int32_t>(r);
    };
    // Find a generator of the full multiplicative group, derive psi of
    // order 2d.
    std::int32_t gen = 0;
    for (std::int32_t c = 2; c < kQ; ++c) {
      if (pow_mod(c, (kQ - 1) / 2) != 1 && pow_mod(c, (kQ - 1) / 3) != 1) {
        gen = c;
        break;
      }
    }
    std::int32_t psi = pow_mod(gen, (kQ - 1) / static_cast<std::int64_t>(2 * d));
    psi_pow.resize(2 * d);
    psi_inv_pow.resize(2 * d);
    psi_pow[0] = 1;
    for (std::size_t i = 1; i < 2 * d; ++i)
      psi_pow[i] = static_cast<std::int32_t>(
          static_cast<std::int64_t>(psi_pow[i - 1]) * psi % kQ);
    std::int32_t psi_inv = pow_mod(psi, 2 * static_cast<std::int64_t>(d) - 1);
    psi_inv_pow[0] = 1;
    for (std::size_t i = 1; i < 2 * d; ++i)
      psi_inv_pow[i] = static_cast<std::int32_t>(
          static_cast<std::int64_t>(psi_inv_pow[i - 1]) * psi_inv % kQ);
    d_inv = pow_mod(static_cast<std::int64_t>(d), kQ - 2);
  }

  // Forward: values f(psi^{2k+1}) via twist + standard cyclic NTT (done
  // naively O(d^2) would be too slow; use iterative radix-2).
  std::vector<std::int32_t> forward(const QPoly& f) const {
    std::vector<std::int32_t> a(d);
    for (std::size_t j = 0; j < d; ++j)
      a[j] = static_cast<std::int32_t>(
          static_cast<std::int64_t>(f[j]) * psi_pow[j] % kQ);
    cyclic_ntt(a, false);
    return a;
  }

  QPoly inverse_transform(std::vector<std::int32_t> a) const {
    cyclic_ntt(a, true);
    QPoly f(d);
    for (std::size_t j = 0; j < d; ++j) {
      std::int64_t v = static_cast<std::int64_t>(a[j]) * psi_inv_pow[j] % kQ;
      v = v * d_inv % kQ;
      f[j] = static_cast<std::int32_t>(v);
    }
    return f;
  }

 private:
  void cyclic_ntt(std::vector<std::int32_t>& a, bool inverse) const {
    std::size_t n = a.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) std::swap(a[i], a[j]);
    }
    // omega = psi^2 has order d.
    for (std::size_t len = 2; len <= n; len <<= 1) {
      // w_len = omega^{d/len} (or inverse)
      std::size_t step = 2 * (d / len);  // exponent step in psi powers
      for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t j = 0; j < len / 2; ++j) {
          std::size_t e = (j * step) % (2 * d);
          std::int32_t w = inverse ? psi_inv_pow[e] : psi_pow[e];
          std::int64_t u = a[i + j];
          std::int64_t v = static_cast<std::int64_t>(a[i + j + len / 2]) * w % kQ;
          a[i + j] = static_cast<std::int32_t>((u + v) % kQ);
          a[i + j + len / 2] = static_cast<std::int32_t>((u - v % kQ + kQ) % kQ);
        }
      }
    }
  }
};

// f^{-1} mod q (negacyclic); returns false if any NTT slot is zero.
bool qinv(const QPoly& f, QPoly& out) {
  static const QNtt ntt512(512);
  static const QNtt ntt1024(1024);
  const QNtt& ntt = f.size() == 512 ? ntt512 : ntt1024;
  auto vals = ntt.forward(f);
  for (auto& v : vals) {
    if (v == 0) return false;
    // Fermat inverse.
    std::int64_t base = v, e = kQ - 2, r = 1;
    while (e > 0) {
      if (e & 1) r = r * base % kQ;
      base = base * base % kQ;
      e >>= 1;
    }
    v = static_cast<std::int32_t>(r);
  }
  out = ntt.inverse_transform(std::move(vals));
  return true;
}

// ---------------------------------------------------------------------------
// Hashing, codecs.
// ---------------------------------------------------------------------------

QPoly hash_to_point(BytesView salt, BytesView message, std::size_t d) {
  Shake xof(256);
  xof.absorb(salt);
  xof.absorb(message);
  QPoly c(d);
  std::size_t filled = 0;
  while (filled < d) {
    std::uint8_t b[2];
    xof.squeeze(b, 2);
    std::uint32_t v = (std::uint32_t{b[0]} << 8) | b[1];
    if (v < 61445) {  // 5 * 12289
      c[filled++] = static_cast<std::int32_t>(v % kQ);
    }
  }
  return c;
}

void pack14(Bytes& out, const QPoly& h) {
  std::uint32_t acc = 0;
  int bits = 0;
  for (std::int32_t v : h) {
    acc = (acc << 14) | static_cast<std::uint32_t>(v);
    bits += 14;
    while (bits >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc >> (bits - 8)));
      bits -= 8;
    }
  }
}

bool unpack14(BytesView in, QPoly& h, std::size_t d) {
  h.assign(d, 0);
  std::uint32_t acc = 0;
  int bits = 0;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < d; ++i) {
    while (bits < 14) {
      if (pos >= in.size()) return false;
      acc = (acc << 8) | in[pos++];
      bits += 8;
    }
    std::uint32_t v = (acc >> (bits - 14)) & 0x3fff;
    bits -= 14;
    if (v >= static_cast<std::uint32_t>(kQ)) return false;
    h[i] = static_cast<std::int32_t>(v);
  }
  return true;
}

// Falcon compressed signature encoding of s2 (sign + 7 low bits + unary
// high part), into a fixed budget. Returns false on overflow.
bool compress_s2(const std::vector<std::int32_t>& s2, std::size_t budget,
                 Bytes& out) {
  std::uint64_t acc = 0;
  int bits = 0;
  out.clear();
  auto push_bits = [&](std::uint32_t value, int nbits) {
    acc = (acc << nbits) | value;
    bits += nbits;
    while (bits >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc >> (bits - 8)));
      bits -= 8;
    }
  };
  for (std::int32_t v : s2) {
    std::uint32_t sign = v < 0 ? 1 : 0;
    std::uint32_t mag = static_cast<std::uint32_t>(v < 0 ? -v : v);
    if (mag > 2047) return false;
    push_bits(sign, 1);
    push_bits(mag & 0x7f, 7);
    std::uint32_t high = mag >> 7;  // <= 15
    // unary: `high` zeros then a one
    push_bits(1, static_cast<int>(high) + 1);
    if (out.size() > budget) return false;
  }
  if (bits > 0) push_bits(0, 8 - bits);
  if (out.size() > budget) return false;
  out.resize(budget, 0);  // zero-pad to the fixed wire size
  return true;
}

bool decompress_s2(BytesView in, std::size_t d, std::vector<std::int32_t>& s2) {
  s2.assign(d, 0);
  std::size_t bitpos = 0;
  auto get_bit = [&]() -> int {
    if (bitpos >= in.size() * 8) return -1;
    int b = (in[bitpos / 8] >> (7 - bitpos % 8)) & 1;
    ++bitpos;
    return b;
  };
  for (std::size_t i = 0; i < d; ++i) {
    int sign = get_bit();
    if (sign < 0) return false;
    std::uint32_t mag = 0;
    for (int j = 0; j < 7; ++j) {
      int b = get_bit();
      if (b < 0) return false;
      mag = (mag << 1) | static_cast<std::uint32_t>(b);
    }
    std::uint32_t high = 0;
    for (;;) {
      int b = get_bit();
      if (b < 0) return false;
      if (b) break;
      if (++high > 15) return false;
    }
    mag |= high << 7;
    if (sign && mag == 0) return false;  // non-canonical -0
    s2[i] = sign ? -static_cast<std::int32_t>(mag)
                 : static_cast<std::int32_t>(mag);
  }
  // Remaining padding must be zero bits.
  while (bitpos < in.size() * 8) {
    int b = get_bit();
    if (b != 0) return false;
  }
  return true;
}

// Secret key layout: header byte, then f, g, F, G as little-endian int16.
void pack_sk(Bytes& out, const std::vector<std::int16_t>& v) {
  for (std::int16_t c : v) {
    out.push_back(static_cast<std::uint8_t>(c & 0xff));
    out.push_back(static_cast<std::uint8_t>((c >> 8) & 0xff));
  }
}

std::vector<std::int16_t> unpack_sk(BytesView in, std::size_t d) {
  std::vector<std::int16_t> v(d);
  for (std::size_t i = 0; i < d; ++i)
    v[i] = static_cast<std::int16_t>(in[2 * i] | (in[2 * i + 1] << 8));
  return v;
}

}  // namespace

FalconSigner::FalconSigner(int degree) : n_(static_cast<std::size_t>(degree)) {
  if (degree == 512) {
    level_ = 1;
    sig_bytes_ = 666;
    beta_squared_ = 34034726;
  } else if (degree == 1024) {
    level_ = 5;
    sig_bytes_ = 1280;
    beta_squared_ = 70265242;
  } else {
    throw std::invalid_argument("Falcon degree must be 512 or 1024");
  }
  name_ = "falcon" + std::to_string(degree);
}

SigKeyPair FalconSigner::generate_keypair(Drbg& rng) const {
  const double sigma_fg = 1.17 * std::sqrt(static_cast<double>(kQ) /
                                           (2.0 * static_cast<double>(n_)));
  for (;;) {
    // Gaussian f, g via Box-Muller.
    std::vector<std::int16_t> f(n_), g(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      double u1 = rng.real(), u2 = rng.real();
      if (u1 < 1e-12) u1 = 1e-12;
      double mag = std::sqrt(-2.0 * std::log(u1));
      f[i] = static_cast<std::int16_t>(
          std::llround(sigma_fg * mag * std::cos(2.0 * M_PI * u2)));
      g[i] = static_cast<std::int16_t>(
          std::llround(sigma_fg * mag * std::sin(2.0 * M_PI * u2)));
    }
    // f must be invertible mod q.
    QPoly fq(n_), gq(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      fq[i] = qreduce(f[i]);
      gq[i] = qreduce(g[i]);
    }
    QPoly f_inv;
    if (!qinv(fq, f_inv)) continue;

    // Solve the NTRU equation.
    SPoly fs(n_), gs(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      fs[i] = SInt(f[i]);
      gs[i] = SInt(g[i]);
    }
    SPoly Fs, Gs;
    if (!solve_ntru(fs, gs, Fs, Gs)) continue;

    // Exactness check: f*G - g*F must equal the constant q.
    SPoly check = nega_mul(fs, Gs);
    SPoly gF = nega_mul(gs, Fs);
    for (std::size_t i = 0; i < n_; ++i) check[i] = ssub(check[i], gF[i]);
    bool exact = !check[0].neg && check[0].mag == BigInt{kQ};
    for (std::size_t i = 1; i < n_ && exact; ++i) exact = check[i].is_zero();
    if (!exact) continue;

    // F, G must fit in int16 for our key layout (true after reduction).
    std::vector<std::int16_t> F(n_), G(n_);
    bool fits = true;
    for (std::size_t i = 0; i < n_ && fits; ++i) {
      auto extract = [&fits](const SInt& v) -> std::int16_t {
        if (v.bit_length() > 14) {
          fits = false;
          return 0;
        }
        auto mag = static_cast<std::int32_t>(v.mag.low_u64());
        return static_cast<std::int16_t>(v.neg ? -mag : mag);
      };
      F[i] = extract(Fs[i]);
      G[i] = extract(Gs[i]);
    }
    if (!fits) continue;

    // h = g / f mod q.
    QPoly h = qmul(gq, f_inv);

    SigKeyPair kp;
    kp.public_key.push_back(static_cast<std::uint8_t>(
        n_ == 512 ? 0x09 : 0x0a));  // 0x00 + logn header
    pack14(kp.public_key, h);
    kp.secret_key.push_back(static_cast<std::uint8_t>(n_ == 512 ? 0x59 : 0x5a));
    pack_sk(kp.secret_key, f);
    pack_sk(kp.secret_key, g);
    pack_sk(kp.secret_key, F);
    pack_sk(kp.secret_key, G);
    return kp;
  }
}

Bytes FalconSigner::sign(BytesView secret_key, BytesView message,
                         Drbg& rng) const {
  auto f = unpack_sk(secret_key.subspan(1, 2 * n_), n_);
  auto g = unpack_sk(secret_key.subspan(1 + 2 * n_, 2 * n_), n_);
  auto F = unpack_sk(secret_key.subspan(1 + 4 * n_, 2 * n_), n_);
  auto G = unpack_sk(secret_key.subspan(1 + 6 * n_, 2 * n_), n_);

  // FFT of the basis (exact small integers).
  auto to_fft = [this](const std::vector<std::int16_t>& v) {
    std::vector<double> d(n_);
    for (std::size_t i = 0; i < n_; ++i) d[i] = static_cast<double>(v[i]);
    return fft_nega(d);
  };
  auto f_fft = to_fft(f);
  auto g_fft = to_fft(g);
  auto F_fft = to_fft(F);
  auto G_fft = to_fft(G);

  for (int attempt = 0; attempt < 64; ++attempt) {
    Bytes salt = rng.bytes(40);
    QPoly c = hash_to_point(salt, message, n_);

    std::vector<double> cd(n_);
    for (std::size_t i = 0; i < n_; ++i) cd[i] = static_cast<double>(c[i]);
    auto c_fft = fft_nega(cd);

    // t = (c, 0) B^{-1} = (-c F / q, c f / q): coordinates of the target in
    // the secret basis B = [[g, -f], [G, -F]].
    std::vector<Cplx> t0(n_), t1(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      t0[i] = -c_fft[i] * F_fft[i] / static_cast<double>(kQ);
      t1[i] = c_fft[i] * f_fft[i] / static_cast<double>(kQ);
    }
    // Babai nearest-plane over the two basis rows (the ffSampling recursion
    // with deterministic rounding at the leaves; see header comment):
    // round z1, then fold the residual's b1-component into t0 via
    // mu = <b2, b1> / <b1, b1>, then round z0.
    auto t1d = ifft_nega(t1);
    std::vector<std::int64_t> z1(n_);
    std::vector<double> z1d(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      z1[i] = std::llround(t1d[i]);
      z1d[i] = static_cast<double>(z1[i]);
    }
    auto z1_fft = fft_nega(z1d);
    for (std::size_t i = 0; i < n_; ++i) {
      Cplx mu = (G_fft[i] * std::conj(g_fft[i]) +
                 F_fft[i] * std::conj(f_fft[i])) /
                (std::norm(g_fft[i]) + std::norm(f_fft[i]));
      t0[i] += (t1[i] - z1_fft[i]) * mu;
    }
    auto z0d = ifft_nega(std::move(t0));
    std::vector<std::int64_t> z0(n_);
    for (std::size_t i = 0; i < n_; ++i) z0[i] = std::llround(z0d[i]);

    // s1 = c - (z0 g + z1 G) mod q (centered), s2 = z0 f + z1 F mod q.
    QPoly z0q(n_), z1q(n_), gq(n_), Gq(n_), fq(n_), Fq(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      z0q[i] = qreduce(z0[i]);
      z1q[i] = qreduce(z1[i]);
      gq[i] = qreduce(g[i]);
      Gq[i] = qreduce(G[i]);
      fq[i] = qreduce(f[i]);
      Fq[i] = qreduce(F[i]);
    }
    QPoly z0g = qmul(z0q, gq);
    QPoly z1G = qmul(z1q, Gq);
    QPoly z0f = qmul(z0q, fq);
    QPoly z1F = qmul(z1q, Fq);

    std::vector<std::int32_t> s1(n_), s2(n_);
    std::int64_t norm = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      std::int32_t v1 = qreduce(static_cast<std::int64_t>(c[i]) - z0g[i] - z1G[i]);
      if (v1 > kQ / 2) v1 -= kQ;
      std::int32_t v2 = qreduce(static_cast<std::int64_t>(z0f[i]) + z1F[i]);
      if (v2 > kQ / 2) v2 -= kQ;
      s1[i] = v1;
      s2[i] = v2;
      norm += static_cast<std::int64_t>(v1) * v1 +
              static_cast<std::int64_t>(v2) * v2;
    }
    if (norm > beta_squared_) continue;  // retry with a fresh salt

    Bytes compressed;
    std::size_t budget = sig_bytes_ - 1 - 40;
    if (!compress_s2(s2, budget, compressed)) continue;

    Bytes sig;
    sig.push_back(static_cast<std::uint8_t>(0x30 + (n_ == 512 ? 9 : 10)));
    append(sig, salt);
    append(sig, compressed);
    return sig;
  }
  throw std::runtime_error("Falcon signing failed repeatedly (bad key?)");
}

bool FalconSigner::verify(BytesView public_key, BytesView message,
                          BytesView signature) const {
  if (public_key.size() != public_key_size() ||
      signature.size() != signature_size())
    return false;
  if (public_key[0] != (n_ == 512 ? 0x09 : 0x0a)) return false;
  if (signature[0] != 0x30 + (n_ == 512 ? 9 : 10)) return false;

  QPoly h;
  if (!unpack14(public_key.subspan(1), h, n_)) return false;
  BytesView salt = signature.subspan(1, 40);
  std::vector<std::int32_t> s2;
  if (!decompress_s2(signature.subspan(41), n_, s2)) return false;

  QPoly c = hash_to_point(salt, message, n_);
  QPoly s2q(n_);
  for (std::size_t i = 0; i < n_; ++i) s2q[i] = qreduce(s2[i]);
  QPoly s2h = qmul(s2q, h);

  std::int64_t norm = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    std::int32_t v1 = qreduce(static_cast<std::int64_t>(c[i]) - s2h[i]);
    if (v1 > kQ / 2) v1 -= kQ;
    norm += static_cast<std::int64_t>(v1) * v1 +
            static_cast<std::int64_t>(s2[i]) * s2[i];
  }
  return norm <= beta_squared_;
}

const FalconSigner& FalconSigner::falcon512() {
  static const FalconSigner s(512);
  return s;
}
const FalconSigner& FalconSigner::falcon1024() {
  static const FalconSigner s(1024);
  return s;
}

}  // namespace pqtls::sig
