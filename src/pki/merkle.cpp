#include "pki/merkle.hpp"

#include <algorithm>

#include "crypto/sha2.hpp"

namespace pqtls::pki {

namespace {

// RFC 6962-style domain separation between leaves and interior nodes.
constexpr std::uint8_t kLeafPrefix = 0x00;
constexpr std::uint8_t kNodePrefix = 0x01;

Bytes node_hash(BytesView left, BytesView right) {
  crypto::Sha256 h;
  const std::uint8_t prefix[1] = {kNodePrefix};
  h.update({prefix, 1});
  h.update(left);
  h.update(right);
  return h.finish();
}

// Filler leaf `i` of the synthetic tree: a label-derived hash, so the whole
// tree is computable on demand from the pinned certificate alone.
Bytes filler_leaf(std::uint32_t index) {
  static const char kLabel[] = "pqtls-merkle-filler";
  crypto::Sha256 h;
  h.update({reinterpret_cast<const std::uint8_t*>(kLabel), sizeof(kLabel) - 1});
  std::uint8_t be[4];
  store_be32(be, index);
  h.update({be, 4});
  return h.finish();
}

}  // namespace

Bytes merkle_leaf_hash(BytesView encoded_certificate) {
  crypto::Sha256 h;
  const std::uint8_t prefix[1] = {kLeafPrefix};
  h.update({prefix, 1});
  h.update(encoded_certificate);
  return h.finish();
}

Bytes MerkleProof::encode() const {
  Bytes out;
  std::uint8_t be[4];
  store_be32(be, leaf_index);
  append(out, {be, 4});
  store_be32(be, tree_leaves);
  append(out, {be, 4});
  out.push_back(static_cast<std::uint8_t>(path.size()));
  for (const Bytes& node : path) append(out, node);
  return out;
}

std::optional<MerkleProof> MerkleProof::decode(BytesView data) {
  if (data.size() < 9) return std::nullopt;
  MerkleProof proof;
  proof.leaf_index = load_be32(data.data());
  proof.tree_leaves = load_be32(data.data() + 4);
  std::size_t count = data[8];
  if (data.size() != 9 + count * kMerkleHashSize) return std::nullopt;
  std::size_t pos = 9;
  for (std::size_t i = 0; i < count; ++i) {
    proof.path.emplace_back(data.begin() + pos,
                            data.begin() + pos + kMerkleHashSize);
    pos += kMerkleHashSize;
  }
  return proof;
}

MerkleBundle pin_certificate(const Certificate& cert) {
  Bytes target = merkle_leaf_hash(cert.encode());
  // The slot is derived from the leaf hash itself: deterministic, spread
  // across the tree, and requiring no stored issuance state.
  std::uint32_t index = target[0] % kMerkleTreeLeaves;

  std::vector<Bytes> level;
  level.reserve(kMerkleTreeLeaves);
  for (std::uint32_t i = 0; i < kMerkleTreeLeaves; ++i)
    level.push_back(i == index ? target : filler_leaf(i));

  MerkleBundle bundle;
  bundle.proof.leaf_index = index;
  bundle.proof.tree_leaves = kMerkleTreeLeaves;
  std::uint32_t pos = index;
  while (level.size() > 1) {
    bundle.proof.path.push_back(level[pos ^ 1]);
    std::vector<Bytes> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(node_hash(level[i], level[i + 1]));
    level = std::move(next);
    pos >>= 1;
  }
  bundle.root = level[0];
  return bundle;
}

bool verify_inclusion(const Certificate& cert, const MerkleProof& proof,
                      BytesView root) {
  if (root.size() != kMerkleHashSize) return false;
  if (proof.tree_leaves == 0 || proof.leaf_index >= proof.tree_leaves)
    return false;
  // A tree over N leaves needs exactly ceil(log2(N)) siblings; reject
  // padded or truncated paths outright.
  std::size_t depth = 0;
  while ((std::uint64_t{1} << depth) < proof.tree_leaves) ++depth;
  if (proof.path.size() != depth) return false;
  Bytes node = merkle_leaf_hash(cert.encode());
  std::uint32_t pos = proof.leaf_index;
  for (const Bytes& sibling : proof.path) {
    if (sibling.size() != kMerkleHashSize) return false;
    node = (pos & 1) ? node_hash(sibling, node) : node_hash(node, sibling);
    pos >>= 1;
  }
  // The tree head is public pinned state; no constant-time needs here.
  return node.size() == root.size() &&
         std::equal(node.begin(), node.end(), root.begin());
}

}  // namespace pqtls::pki
