// Merkle-tree certificates (cf. draft-davidben-tls-merkle-tree-certs): the
// server proves membership of its leaf certificate in a tree whose head the
// client pinned out of band, replacing the intermediate chain with a short
// SHA-256 inclusion proof.
#pragma once

#include <optional>

#include "pki/certificate.hpp"

namespace pqtls::pki {

/// SHA-256 digest size of every tree node.
inline constexpr std::size_t kMerkleHashSize = 32;

/// Leaves in the synthetic demo tree (power of two; proofs are log2 deep).
inline constexpr std::size_t kMerkleTreeLeaves = 256;

/// Inclusion proof: the audit path from the leaf to the tree head.
struct MerkleProof {
  std::uint32_t leaf_index = 0;
  std::uint32_t tree_leaves = 0;
  std::vector<Bytes> path;  // sibling hashes, leaf level first

  Bytes encode() const;
  static std::optional<MerkleProof> decode(BytesView data);
};

/// A pinned certificate: the tree head the relying party trusts plus the
/// proof the server transmits.
struct MerkleBundle {
  Bytes root;  // 32-byte tree head
  MerkleProof proof;
};

/// Domain-separated leaf hash of an encoded certificate.
Bytes merkle_leaf_hash(BytesView encoded_certificate);

/// Pin `cert` into a deterministic 256-leaf tree (the other leaves are
/// label-derived filler hashes, the slot is chosen from the leaf hash).
/// Consumes no randomness, so pinning never perturbs a DRBG stream.
MerkleBundle pin_certificate(const Certificate& cert);

/// Walk `proof` from `cert`'s leaf hash and compare against `root`.
bool verify_inclusion(const Certificate& cert, const MerkleProof& proof,
                      BytesView root);

}  // namespace pqtls::pki
