#include "pki/certificate.hpp"

#include <stdexcept>

#include "crypto/catalog.hpp"

namespace pqtls::pki {

namespace {

// All signer lookups go through the unified catalog (its headline/metadata
// view is the single source of algorithm truth); nullptr for unknown names
// so callers keep their own error story.
const sig::Signer* catalog_signer(const std::string& name) {
  const crypto::AlgorithmInfo* info =
      crypto::AlgorithmCatalog::instance().signer(name);
  return info ? info->signer : nullptr;
}

void put_string(Bytes& out, const std::string& s) {
  out.push_back(static_cast<std::uint8_t>(s.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_bytes(Bytes& out, BytesView b) {
  std::uint8_t be[4];
  store_be32(be, static_cast<std::uint32_t>(b.size()));
  append(out, {be, 4});
  append(out, b);
}

void put_u64(Bytes& out, std::uint64_t v) {
  std::uint8_t be[8];
  store_be64(be, v);
  append(out, {be, 8});
}

struct Reader {
  BytesView data;
  std::size_t pos = 0;
  bool failed = false;

  std::optional<std::string> get_string() {
    if (pos + 2 > data.size()) {
      failed = true;
      return std::nullopt;
    }
    std::size_t len = (std::size_t{data[pos]} << 8) | data[pos + 1];
    pos += 2;
    if (pos + len > data.size()) {
      failed = true;
      return std::nullopt;
    }
    std::string s(data.begin() + pos, data.begin() + pos + len);
    pos += len;
    return s;
  }

  std::optional<Bytes> get_bytes() {
    if (pos + 4 > data.size()) {
      failed = true;
      return std::nullopt;
    }
    std::size_t len = load_be32(data.data() + pos);
    pos += 4;
    if (pos + len > data.size()) {
      failed = true;
      return std::nullopt;
    }
    Bytes b(data.begin() + pos, data.begin() + pos + len);
    pos += len;
    return b;
  }

  std::optional<std::uint64_t> get_u64() {
    if (pos + 8 > data.size()) {
      failed = true;
      return std::nullopt;
    }
    std::uint64_t v = load_be64(data.data() + pos);
    pos += 8;
    return v;
  }
};

}  // namespace

Bytes Certificate::tbs() const {
  Bytes out;
  put_string(out, subject);
  put_string(out, issuer);
  put_string(out, key_algorithm);
  put_string(out, signature_algorithm);
  put_u64(out, not_before);
  put_u64(out, not_after);
  put_bytes(out, subject_public_key);
  return out;
}

Bytes Certificate::encode() const {
  Bytes out = tbs();
  put_bytes(out, signature);
  return out;
}

std::optional<Certificate> Certificate::decode(BytesView data) {
  Reader r{data};
  Certificate cert;
  auto subject = r.get_string();
  auto issuer = r.get_string();
  auto key_alg = r.get_string();
  auto sig_alg = r.get_string();
  auto nb = r.get_u64();
  auto na = r.get_u64();
  auto pk = r.get_bytes();
  auto sig = r.get_bytes();
  if (r.failed || r.pos != data.size()) return std::nullopt;
  cert.subject = *subject;
  cert.issuer = *issuer;
  cert.key_algorithm = *key_alg;
  cert.signature_algorithm = *sig_alg;
  cert.not_before = *nb;
  cert.not_after = *na;
  cert.subject_public_key = *pk;
  cert.signature = *sig;
  return cert;
}

Bytes CertificateChain::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(certificates.size()));
  for (const auto& cert : certificates) put_bytes(out, cert.encode());
  return out;
}

std::optional<CertificateChain> CertificateChain::decode(BytesView data) {
  if (data.empty()) return std::nullopt;
  std::size_t count = data[0];
  Reader r{data, 1};
  CertificateChain chain;
  for (std::size_t i = 0; i < count; ++i) {
    auto blob = r.get_bytes();
    if (!blob) return std::nullopt;
    auto cert = Certificate::decode(*blob);
    if (!cert) return std::nullopt;
    chain.certificates.push_back(std::move(*cert));
  }
  if (r.failed || r.pos != data.size()) return std::nullopt;
  return chain;
}

namespace {
constexpr std::uint64_t kValidFrom = 1'700'000'000;
constexpr std::uint64_t kValidTo = 2'000'000'000;
}  // namespace

CertificateAuthority make_root_ca(const sig::Signer& signer,
                                  const std::string& subject, sig::Drbg& rng) {
  CertificateAuthority ca;
  ca.signer = &signer;
  sig::SigKeyPair kp = signer.generate_keypair(rng);
  ca.secret_key = kp.secret_key;
  ca.certificate.subject = subject;
  ca.certificate.issuer = subject;  // self-signed
  ca.certificate.key_algorithm = signer.name();
  ca.certificate.signature_algorithm = signer.name();
  ca.certificate.not_before = kValidFrom;
  ca.certificate.not_after = kValidTo;
  ca.certificate.subject_public_key = kp.public_key;
  ca.certificate.signature = signer.sign(ca.secret_key, ca.certificate.tbs(), rng);
  return ca;
}

Certificate issue_certificate(const CertificateAuthority& ca,
                              const std::string& subject,
                              const std::string& key_algorithm,
                              BytesView subject_public_key, sig::Drbg& rng) {
  Certificate cert;
  cert.subject = subject;
  cert.issuer = ca.certificate.subject;
  cert.key_algorithm = key_algorithm;
  cert.signature_algorithm = ca.signer->name();
  cert.not_before = kValidFrom;
  cert.not_after = kValidTo;
  cert.subject_public_key.assign(subject_public_key.begin(),
                                 subject_public_key.end());
  cert.signature = ca.signer->sign(ca.secret_key, cert.tbs(), rng);
  return cert;
}

std::string intermediate_subject(std::size_t level) {
  return "pqtls-bench intermediate CA " + std::to_string(level + 1);
}

IssuedChain issue_chain(const ChainProfile& profile,
                        const sig::Signer& leaf_signer,
                        const std::string& leaf_subject,
                        const std::string& root_subject, sig::Drbg& rng) {
  const sig::Signer* root_signer = &leaf_signer;
  if (!profile.root_sa.empty()) {
    root_signer = catalog_signer(profile.root_sa);
    if (!root_signer)
      throw std::runtime_error("issue_chain: unknown root SA " +
                               profile.root_sa);
  }
  IssuedChain issued;
  CertificateAuthority ca = make_root_ca(*root_signer, root_subject, rng);
  issued.root = ca.certificate;

  // Intermediates, root-nearest first; each is issued by the CA above it.
  std::vector<Certificate> intermediates;
  for (std::size_t i = 0; i < profile.intermediate_sas.size(); ++i) {
    const sig::Signer* signer = catalog_signer(profile.intermediate_sas[i]);
    if (!signer)
      throw std::runtime_error("issue_chain: unknown intermediate SA " +
                               profile.intermediate_sas[i]);
    sig::SigKeyPair kp = signer->generate_keypair(rng);
    Certificate cert = issue_certificate(ca, intermediate_subject(i),
                                         signer->name(), kp.public_key, rng);
    intermediates.push_back(cert);
    ca.certificate = std::move(cert);
    ca.secret_key = std::move(kp.secret_key);
    ca.signer = signer;
  }

  sig::SigKeyPair leaf_kp = leaf_signer.generate_keypair(rng);
  Certificate leaf = issue_certificate(ca, leaf_subject, leaf_signer.name(),
                                       leaf_kp.public_key, rng);
  issued.leaf_secret_key = std::move(leaf_kp.secret_key);

  // Wire order: leaf first, then intermediates leaf-nearest first.
  issued.chain.certificates.push_back(std::move(leaf));
  for (auto it = intermediates.rbegin(); it != intermediates.rend(); ++it)
    issued.chain.certificates.push_back(std::move(*it));
  return issued;
}

namespace {

// Encoded size of one certificate: four length-prefixed strings, two u64
// timestamps, and u32-prefixed public key and signature.
std::size_t cert_encoded_size(const std::string& subject,
                              const std::string& issuer,
                              const sig::Signer& key_sa,
                              const sig::Signer& issuer_sa) {
  return (2 + subject.size()) + (2 + issuer.size()) +
         (2 + key_sa.name().size()) + (2 + issuer_sa.name().size()) + 16 +
         (4 + key_sa.public_key_size()) + (4 + issuer_sa.signature_size());
}

}  // namespace

std::size_t chain_encoded_size(const ChainProfile& profile,
                               const sig::Signer& leaf_signer,
                               const std::string& leaf_subject,
                               const std::string& root_subject) {
  const sig::Signer* root_signer = &leaf_signer;
  if (!profile.root_sa.empty()) {
    root_signer = catalog_signer(profile.root_sa);
    if (!root_signer)
      throw std::runtime_error("chain_encoded_size: unknown root SA " +
                               profile.root_sa);
  }
  // Mirror issue_chain: walk the hierarchy top-down, accumulating the
  // wire-transmitted certificates (everything except the root).
  std::size_t total = 1;  // chain count byte
  const sig::Signer* issuer_sa = root_signer;
  std::string issuer_subject = root_subject;
  for (std::size_t i = 0; i < profile.intermediate_sas.size(); ++i) {
    const sig::Signer* signer = catalog_signer(profile.intermediate_sas[i]);
    if (!signer)
      throw std::runtime_error("chain_encoded_size: unknown intermediate SA " +
                               profile.intermediate_sas[i]);
    total += 4 + cert_encoded_size(intermediate_subject(i), issuer_subject,
                                   *signer, *issuer_sa);
    issuer_sa = signer;
    issuer_subject = intermediate_subject(i);
  }
  total += 4 + cert_encoded_size(leaf_subject, issuer_subject, leaf_signer,
                                 *issuer_sa);
  return total;
}

bool verify_chain(const CertificateChain& chain, const Certificate& root,
                  std::uint64_t now) {
  if (chain.certificates.empty()) return false;
  for (std::size_t i = 0; i < chain.certificates.size(); ++i) {
    const Certificate& cert = chain.certificates[i];
    if (now < cert.not_before || now > cert.not_after) return false;
    const Certificate* issuer = (i + 1 < chain.certificates.size())
                                    ? &chain.certificates[i + 1]
                                    : &root;
    if (cert.issuer != issuer->subject) return false;
    const sig::Signer* signer = catalog_signer(cert.signature_algorithm);
    if (!signer || signer->name() != issuer->key_algorithm) return false;
    if (!signer->verify(issuer->subject_public_key, cert.tbs(),
                        cert.signature))
      return false;
  }
  // The last chain certificate must be the root itself or directly issued
  // by it; verify the root's self-signature too.
  const sig::Signer* root_signer = catalog_signer(root.signature_algorithm);
  if (!root_signer) return false;
  return root_signer->verify(root.subject_public_key, root.tbs(),
                             root.signature);
}

}  // namespace pqtls::pki
