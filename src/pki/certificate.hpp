// Minimal x509-like PKI: binary certificates carrying a subject, issuer,
// algorithm identifiers, a subject public key and an issuer signature, plus
// two-level chains (root CA -> server). Field sizes mirror what dominates
// real x509 certificates (the SA public key and signature), so the
// Certificate-message volumes match the paper's Table 2 data.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sig/sig.hpp"

namespace pqtls::pki {

struct Certificate {
  std::string subject;
  std::string issuer;
  std::string key_algorithm;        // SA of subject_public_key
  std::string signature_algorithm;  // SA the issuer signed with
  std::uint64_t not_before = 0;
  std::uint64_t not_after = 0;
  Bytes subject_public_key;
  Bytes signature;

  /// The to-be-signed portion (everything except the signature).
  Bytes tbs() const;
  Bytes encode() const;
  static std::optional<Certificate> decode(BytesView data);
};

/// Ordered leaf-first chain, as sent in the TLS Certificate message.
struct CertificateChain {
  std::vector<Certificate> certificates;

  Bytes encode() const;
  static std::optional<CertificateChain> decode(BytesView data);
};

/// A CA able to issue certificates.
struct CertificateAuthority {
  Certificate certificate;  // self-signed root
  Bytes secret_key;
  const sig::Signer* signer = nullptr;
};

/// Create a self-signed root CA for `signer`.
CertificateAuthority make_root_ca(const sig::Signer& signer,
                                  const std::string& subject, sig::Drbg& rng);

/// Issue an end-entity certificate for `subject_public_key` signed by `ca`.
Certificate issue_certificate(const CertificateAuthority& ca,
                              const std::string& subject,
                              const std::string& key_algorithm,
                              BytesView subject_public_key, sig::Drbg& rng);

/// Verify a leaf-first chain against a trusted root certificate: signatures,
/// issuer linkage, and validity at `now`.
bool verify_chain(const CertificateChain& chain, const Certificate& root,
                  std::uint64_t now);

/// Shape of a certificate hierarchy: which SA signs at every level above the
/// leaf. The default (no intermediates, empty `root_sa`) reproduces the
/// historical two-level root -> leaf hierarchy byte-for-byte, with the root
/// keyed on the leaf's own SA.
struct ChainProfile {
  /// Slug used in cache keys, campaign cell ids, and filenames.
  std::string name = "leaf";
  /// SA keying the root CA; empty = same SA as the leaf.
  std::string root_sa;
  /// Key SA of each intermediate CA, root-nearest first; empty = no
  /// intermediates (the root issues the leaf directly).
  std::vector<std::string> intermediate_sas;

  /// True for the default two-level hierarchy (root issues leaf directly
  /// and is keyed on the leaf SA).
  bool leaf_only() const { return intermediate_sas.empty() && root_sa.empty(); }
};

/// Subject name of intermediate CA `level` (root-nearest, zero-based). Shared
/// with the catalog's wire-size accounting so predicted sizes stay exact.
std::string intermediate_subject(std::size_t level);

/// A fully issued hierarchy: the trusted root plus the leaf-first chain the
/// server puts on the wire (leaf, then intermediates leaf-nearest first; the
/// root itself is never transmitted).
struct IssuedChain {
  Certificate root;
  CertificateChain chain;
  Bytes leaf_secret_key;
};

/// Issue a hierarchy per `profile`: root CA, intermediates root-nearest
/// first, then the leaf keyed on `leaf_signer`. DRBG consumption for the
/// default profile matches the historical root+leaf issuance exactly.
IssuedChain issue_chain(const ChainProfile& profile,
                        const sig::Signer& leaf_signer,
                        const std::string& leaf_subject,
                        const std::string& root_subject, sig::Drbg& rng);

/// Exact on-the-wire size of `CertificateChain::encode()` for a hierarchy
/// issued per `profile` with `leaf_signer` keys at the leaf, computed from
/// the catalog'd SA sizes without running key generation.
std::size_t chain_encoded_size(const ChainProfile& profile,
                               const sig::Signer& leaf_signer,
                               const std::string& leaf_subject,
                               const std::string& root_subject);

}  // namespace pqtls::pki
