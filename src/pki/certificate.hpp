// Minimal x509-like PKI: binary certificates carrying a subject, issuer,
// algorithm identifiers, a subject public key and an issuer signature, plus
// two-level chains (root CA -> server). Field sizes mirror what dominates
// real x509 certificates (the SA public key and signature), so the
// Certificate-message volumes match the paper's Table 2 data.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sig/sig.hpp"

namespace pqtls::pki {

struct Certificate {
  std::string subject;
  std::string issuer;
  std::string key_algorithm;        // SA of subject_public_key
  std::string signature_algorithm;  // SA the issuer signed with
  std::uint64_t not_before = 0;
  std::uint64_t not_after = 0;
  Bytes subject_public_key;
  Bytes signature;

  /// The to-be-signed portion (everything except the signature).
  Bytes tbs() const;
  Bytes encode() const;
  static std::optional<Certificate> decode(BytesView data);
};

/// Ordered leaf-first chain, as sent in the TLS Certificate message.
struct CertificateChain {
  std::vector<Certificate> certificates;

  Bytes encode() const;
  static std::optional<CertificateChain> decode(BytesView data);
};

/// A CA able to issue certificates.
struct CertificateAuthority {
  Certificate certificate;  // self-signed root
  Bytes secret_key;
  const sig::Signer* signer = nullptr;
};

/// Create a self-signed root CA for `signer`.
CertificateAuthority make_root_ca(const sig::Signer& signer,
                                  const std::string& subject, sig::Drbg& rng);

/// Issue an end-entity certificate for `subject_public_key` signed by `ca`.
Certificate issue_certificate(const CertificateAuthority& ca,
                              const std::string& subject,
                              const std::string& key_algorithm,
                              BytesView subject_public_key, sig::Drbg& rng);

/// Verify a leaf-first chain against a trusted root certificate: signatures,
/// issuer linkage, and validity at `now`.
bool verify_chain(const CertificateChain& chain, const Certificate& root,
                  std::uint64_t now);

}  // namespace pqtls::pki
