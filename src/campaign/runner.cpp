#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <thread>

#include "crypto/backend/backend.hpp"
#include "trace/trace.hpp"

namespace pqtls::campaign {

std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::string_view cell_id) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (char ch : cell_id) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  std::uint64_t z = base_seed ^ h;
  z += 0x9e3779b97f4a7c15ull;  // SplitMix64 finalizer
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

// Cell ids are paths like "table4a/kyber512-sphincs128-high-loss"; flatten
// them into single filenames.
std::string trace_file_stem(std::string_view cell_id) {
  std::string stem;
  stem.reserve(cell_id.size());
  for (char ch : cell_id) stem.push_back(ch == '/' ? '-' : ch);
  return stem;
}

void write_trace_files(const std::filesystem::path& dir,
                       std::string_view cell_id,
                       const trace::Recorder& recorder) {
  std::string stem = trace_file_stem(cell_id);
  std::ofstream jsonl(dir / (stem + ".jsonl"));
  recorder.write_jsonl(jsonl);
  std::ofstream chrome(dir / (stem + ".trace.json"));
  recorder.write_chrome_trace(chrome);
}

CellOutcome run_cell(const CampaignSpec& spec, const Cell& cell,
                     const RunnerOptions& opts) {
  CellOutcome out;
  out.campaign = spec.name;
  out.backend = std::string(crypto::backend::active_name());
  out.cell = cell;
  testbed::ExperimentConfig& config = out.cell.config;
  config.seed = derive_cell_seed(opts.base_seed, cell.id);
  config.pki_seed = opts.base_seed;
  config.time_model = opts.time_model;
  if (opts.samples > 0) config.sample_handshakes = opts.samples;
  if (opts.max_cell_seconds > 0) config.max_wall_seconds = opts.max_cell_seconds;
  if (out.cell.loadgen) {
    // Loadgen cells inherit the same scheduling-independent seed derivation
    // and PKI pinning; they always run in virtual time (the sample count
    // and wall budget knobs do not apply).
    out.cell.loadgen->seed = config.seed;
    out.cell.loadgen->pki_seed = opts.base_seed;
  }

  // Traced campaigns record the first sample of every testbed cell; each
  // worker-local recorder is written out right after its cell finishes.
  trace::Recorder recorder;
  bool traced = !opts.trace_dir.empty() && !out.cell.loadgen;
  if (traced) config.trace = &recorder;

  auto t0 = std::chrono::steady_clock::now();
  try {
    if (out.cell.loadgen) {
      out.load = loadgen::run_load(*out.cell.loadgen);
      if (!out.load.ok) out.error = "no handshake completed in the window";
    } else {
      out.result = testbed::run_experiment(config);
      if (!out.result.ok)
        out.error = out.result.timed_out
                        ? "cell exceeded its wall-clock budget"
                        : "no handshake sample completed";
      if (traced && !recorder.empty())
        write_trace_files(opts.trace_dir, cell.id, recorder);
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown exception";
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace

int run_campaign(const CampaignSpec& spec, const RunnerOptions& opts,
                 const std::vector<Sink*>& sinks) {
  // Created once, before the pool starts, so workers only ever write
  // distinct per-cell files into an existing directory.
  if (!opts.trace_dir.empty())
    std::filesystem::create_directories(opts.trace_dir);
  for (Sink* sink : sinks) sink->begin(spec, opts);

  const std::size_t n = spec.cells.size();
  // Reorder buffer: workers complete cells in any order; the coordinating
  // thread drains slot i only once it is filled, so sinks observe campaign
  // order (and therefore identical streams) at every worker count.
  std::vector<std::optional<CellOutcome>> done(n);
  std::mutex mu;
  std::condition_variable filled;
  std::atomic<std::size_t> next{0};

  auto work = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      CellOutcome outcome = run_cell(spec, spec.cells[i], opts);
      {
        std::lock_guard<std::mutex> lock(mu);
        done[i] = std::move(outcome);
      }
      filled.notify_all();
    }
  };

  std::size_t workers = static_cast<std::size_t>(std::max(1, opts.workers));
  workers = std::min(workers, std::max<std::size_t>(n, 1));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);

  int failed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    CellOutcome outcome;
    {
      std::unique_lock<std::mutex> lock(mu);
      filled.wait(lock, [&] { return done[i].has_value(); });
      outcome = std::move(*done[i]);
      done[i].reset();  // free samples early on long campaigns
    }
    if (!outcome.ok()) ++failed;
    if (opts.progress)
      std::fprintf(stderr, "[%zu/%zu] %-40s %s (%.1fs)\n", i + 1, n,
                   outcome.cell.id.c_str(),
                   outcome.ok() ? "ok" : outcome.error.c_str(),
                   outcome.wall_seconds);
    for (Sink* sink : sinks) sink->cell(outcome);
  }
  for (std::thread& t : pool) t.join();

  for (Sink* sink : sinks) sink->finish();
  return failed;
}

}  // namespace pqtls::campaign
