// Defensive parsing of numeric knobs shared by the campaign CLI and the
// bench binaries. Malformed input never silently becomes 0 (the old
// std::atoi behaviour): the caller's default wins and a warning goes to
// stderr so a typo in PQTLS_SAMPLES doesn't degrade a run to zero samples.
#pragma once

#include <cstdint>

namespace pqtls::campaign {

/// Parse `text` as a strictly positive decimal integer; on nullptr,
/// non-numeric input, trailing garbage, overflow, or a value < 1, warn on
/// stderr (naming `what` as the source) and return `fallback`.
int positive_int_or(const char* text, int fallback, const char* what);

/// Like positive_int_or but for unsigned 64-bit values (seeds); accepts 0.
std::uint64_t u64_or(const char* text, std::uint64_t fallback,
                     const char* what);

/// Sample-count override from the PQTLS_SAMPLES environment variable.
int env_samples(int fallback);

/// Worker-count override from the PQTLS_WORKERS environment variable.
int env_workers(int fallback);

}  // namespace pqtls::campaign
