// The shared algorithm matrix behind the paper's tables and figures: which
// key agreements and signature algorithms appear in which artifact, grouped
// by NIST security level. Lifted out of bench/bench_common.hpp so the
// campaign engine and the per-table bench binaries declare their cells from
// one registry instead of each keeping a private copy. Rows are derived
// from crypto::AlgorithmCatalog (names, table levels, registry order), so
// the matrices cannot drift from the registries.
#pragma once

#include <vector>

namespace pqtls::campaign {

/// One algorithm entry: NIST level (0 = sub-level-1) and registry name.
struct AlgRow {
  int level;
  const char* name;
};

/// The paper's 23 key agreements (Table 2a), rsa:2048 as the fixed SA.
const std::vector<AlgRow>& table2a_kas();

/// The paper's 23 signature algorithms (Table 2b), X25519 as the fixed KA.
const std::vector<AlgRow>& table2b_sas();

/// Table 4b's SA list: Table 2b plus the rsa3072_dilithium2 hybrid.
const std::vector<AlgRow>& table4b_sas();

/// KA selection for the loadgen capacity campaigns (rsa:2048 as the fixed
/// SA, mirroring Table 2a's convention): one representative per family.
const std::vector<AlgRow>& loadgen_kas();

/// SA selection for the loadgen capacity campaigns (x25519 as the fixed
/// KA, mirroring Table 2b's convention).
const std::vector<AlgRow>& loadgen_sas();

/// Non-hybrid KA x SA combinations per level group for Figure 3 (the paper
/// groups NIST levels one and two, uses only rsa:3072 among the RSAs).
struct LevelCombos {
  const char* label;
  std::vector<const char*> kas;
  std::vector<const char*> sas;
};
const std::vector<LevelCombos>& fig3_levels();

}  // namespace pqtls::campaign
