#include "campaign/sinks.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>

namespace pqtls::campaign {

namespace {

// snprintf with a C locale-independent fixed format: identical doubles
// always serialize to identical bytes, which the determinism guarantee
// (equal rows at any worker count) depends on.
std::string fmt_ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds * 1e3);
  return buf;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

std::string csv_escape(std::string_view text) {
  if (text.find_first_of(",\"\n") == std::string_view::npos)
    return std::string(text);
  std::string out = "\"";
  for (char ch : text) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += "\"";
  return out;
}

}  // namespace

void JsonlSink::cell(const CellOutcome& o) {
  const auto& c = o.cell.config;
  const auto& r = o.result;
  out_ << "{\"campaign\":\"" << json_escape(o.campaign) << "\""
       << ",\"id\":\"" << json_escape(o.cell.id) << "\""
       << ",\"ka\":\"" << json_escape(c.ka) << "\""
       << ",\"sa\":\"" << json_escape(c.sa) << "\""
       << ",\"scenario\":\"" << json_escape(o.cell.scenario) << "\""
       << ",\"seed\":" << c.seed
       << ",\"ok\":" << (o.ok() ? "true" : "false")
       << ",\"timed_out\":" << (r.timed_out ? "true" : "false")
       << ",\"error\":\"" << json_escape(o.error) << "\""
       << ",\"samples\":" << r.samples.size()
       << ",\"median_part_a_ms\":" << fmt_ms(r.median_part_a)
       << ",\"median_part_b_ms\":" << fmt_ms(r.median_part_b)
       << ",\"median_total_ms\":" << fmt_ms(r.median_total)
       << ",\"client_bytes\":" << r.client_bytes
       << ",\"server_bytes\":" << r.server_bytes
       << ",\"handshakes_60s\":" << r.total_handshakes_60s << "}\n";
}

void CsvSink::begin(const CampaignSpec&, const RunnerOptions&) {
  out_ << "campaign,id,ka,sa,scenario,seed,ok,timed_out,error,samples,"
          "median_part_a_ms,median_part_b_ms,median_total_ms,"
          "client_bytes,server_bytes,handshakes_60s\n";
}

void CsvSink::cell(const CellOutcome& o) {
  const auto& c = o.cell.config;
  const auto& r = o.result;
  out_ << csv_escape(o.campaign) << ',' << csv_escape(o.cell.id) << ','
       << csv_escape(c.ka) << ',' << csv_escape(c.sa) << ','
       << csv_escape(o.cell.scenario) << ',' << c.seed << ','
       << (o.ok() ? "true" : "false") << ','
       << (r.timed_out ? "true" : "false") << ',' << csv_escape(o.error)
       << ',' << r.samples.size() << ',' << fmt_ms(r.median_part_a) << ','
       << fmt_ms(r.median_part_b) << ',' << fmt_ms(r.median_total) << ','
       << r.client_bytes << ',' << r.server_bytes << ','
       << r.total_handshakes_60s << '\n';
}

void AsciiSink::begin(const CampaignSpec& spec, const RunnerOptions& opts) {
  layout_ = spec.ascii_layout;
  char head[256];
  std::snprintf(head, sizeof(head), "%s — %s (%d cells)\n",
                spec.name.c_str(), spec.description.c_str(),
                static_cast<int>(spec.cells.size()));
  out_ << head;
  (void)opts;
  if (layout_ == AsciiLayout::kPerCell) {
    std::snprintf(head, sizeof(head),
                  "%-34s %10s %10s %10s %8s %10s %10s\n", "cell", "A med(ms)",
                  "B med(ms)", "tot(ms)", "# Total", "Client(B)",
                  "Server(B)");
    out_ << head;
  }
}

void AsciiSink::cell(const CellOutcome& o) {
  if (layout_ == AsciiLayout::kScenarioMatrix) {
    matrix_cells_.push_back(o);
    return;
  }
  char line[256];
  if (!o.ok()) {
    std::snprintf(line, sizeof(line), "%-34s FAILED: %s\n",
                  o.cell.id.c_str(), o.error.c_str());
    out_ << line;
    return;
  }
  const auto& r = o.result;
  std::snprintf(line, sizeof(line),
                "%-34s %10.2f %10.2f %10.2f %7.1fk %10zu %10zu\n",
                o.cell.id.c_str(), r.median_part_a * 1e3,
                r.median_part_b * 1e3, r.median_total * 1e3,
                static_cast<double>(r.total_handshakes_60s) / 1000.0,
                r.client_bytes, r.server_bytes);
  out_ << line;
}

void AsciiSink::finish() {
  if (layout_ != AsciiLayout::kScenarioMatrix) return;
  // Rows: "ka/sa" in first-seen order; columns: scenarios in first-seen
  // order; cell value: median total latency (ms).
  std::vector<std::string> scenarios, rows;
  std::map<std::pair<std::string, std::string>, const CellOutcome*> grid;
  for (const auto& o : matrix_cells_) {
    std::string row = o.cell.config.ka + "/" + o.cell.config.sa;
    if (std::find(rows.begin(), rows.end(), row) == rows.end())
      rows.push_back(row);
    if (std::find(scenarios.begin(), scenarios.end(), o.cell.scenario) ==
        scenarios.end())
      scenarios.push_back(o.cell.scenario);
    grid[{row, o.cell.scenario}] = &o;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-34s", "cell");
  out_ << buf;
  for (const auto& s : scenarios) {
    std::snprintf(buf, sizeof(buf), " %12.12s", s.c_str());
    out_ << buf;
  }
  out_ << '\n';
  for (const auto& row : rows) {
    std::snprintf(buf, sizeof(buf), "%-34s", row.c_str());
    out_ << buf;
    for (const auto& s : scenarios) {
      auto it = grid.find({row, s});
      if (it != grid.end() && it->second->ok())
        std::snprintf(buf, sizeof(buf), " %12.2f",
                      it->second->result.median_total * 1e3);
      else
        std::snprintf(buf, sizeof(buf), " %12s", "FAIL");
      out_ << buf;
    }
    out_ << '\n';
  }
}

}  // namespace pqtls::campaign
