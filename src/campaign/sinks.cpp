#include "campaign/sinks.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <map>
#include <string_view>

#include "crypto/backend/backend.hpp"

namespace pqtls::campaign {

namespace {

// snprintf with a C locale-independent fixed format: identical doubles
// always serialize to identical bytes, which the determinism guarantee
// (equal rows at any worker count) depends on. Non-finite values (the
// engines report NaN percentiles for a window with zero completions)
// canonicalize to "nan" — platform printf would emit "nan"/"-nan"/"nan(…)".
std::string fmt_ms(double seconds) {
  if (!std::isfinite(seconds)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds * 1e3);
  return buf;
}

// JSON has no NaN literal; empty windows serialize as null.
std::string fmt_ms_json(double seconds) {
  return std::isfinite(seconds) ? fmt_ms(seconds) : "null";
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

std::string csv_escape(std::string_view text) {
  if (text.find_first_of(",\"\n") == std::string_view::npos)
    return std::string(text);
  std::string out = "\"";
  for (char ch : text) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += "\"";
  return out;
}

// Loadgen rates and ratios, fixed-precision for byte-stable rows.
std::string fmt_rate(double per_second) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", per_second);
  return buf;
}

const char* arrival_name(loadgen::Arrival arrival) {
  return arrival == loadgen::Arrival::kPoisson ? "poisson" : "closed";
}

const char* policy_name(loadgen::Policy policy) {
  return policy == loadgen::Policy::kFifo ? "fifo" : "sjf";
}

bool is_loadgen_campaign(const CampaignSpec& spec) {
  return !spec.cells.empty() && spec.cells.front().loadgen.has_value();
}

bool is_fleet_campaign(const CampaignSpec& spec) {
  return is_loadgen_campaign(spec) && spec.cells.front().loadgen->is_fleet();
}

// Campaigns sweeping the server-side batching factor get a batch field so
// otherwise-identical cells stay distinguishable; campaigns where every
// cell runs unbatched keep their pre-batching row bytes.
bool is_batch_campaign(const CampaignSpec& spec) {
  if (!is_loadgen_campaign(spec)) return false;
  for (const auto& cell : spec.cells)
    if (cell.loadgen && cell.loadgen->batch != 1) return true;
  return false;
}

// SLO verdict for fleet rows: tail latency within the configured budget and
// at most 1% of arrivals lost to drops/abandonment (the sweep's knee rule).
bool within_slo(const loadgen::LoadConfig& lc, const CellOutcome& o) {
  const auto& m = o.load;
  if (!o.ok() || !std::isfinite(m.p99)) return false;
  double lost = static_cast<double>(m.dropped + m.timed_out);
  return m.p99 <= lc.slo_s &&
         (m.arrivals <= 0 || lost <= 0.01 * static_cast<double>(m.arrivals));
}

// A sink receiving ok=true metrics with non-finite percentiles means an
// engine skipped the zero-completion guard — fail loudly in debug builds.
void check_percentiles(const CellOutcome& o) {
  assert((!o.cell.loadgen || !o.ok() ||
          (std::isfinite(o.load.p50) && std::isfinite(o.load.p90) &&
           std::isfinite(o.load.p99) && std::isfinite(o.load.p999))) &&
         "ok metrics must carry finite percentiles");
  (void)o;
}

}  // namespace

void JsonlSink::begin(const CampaignSpec& spec, const RunnerOptions& opts) {
  batch_ = is_batch_campaign(spec);
  if (emit_meta_) {
    out_ << "{\"meta\":true,\"campaign\":\"" << json_escape(spec.name)
         << "\",\"backend\":\"" << crypto::backend::active_name()
         << "\",\"workers\":" << opts.workers << "}\n";
  }
}

void JsonlSink::cell(const CellOutcome& o) {
  if (o.cell.loadgen) {
    check_percentiles(o);
    const auto& lc = *o.cell.loadgen;
    const auto& m = o.load;
    out_ << "{\"campaign\":\"" << json_escape(o.campaign) << "\""
         << ",\"id\":\"" << json_escape(o.cell.id) << "\""
         << ",\"ka\":\"" << json_escape(lc.ka) << "\""
         << ",\"sa\":\"" << json_escape(lc.sa) << "\""
         << ",\"arrival\":\"" << arrival_name(lc.arrival) << "\""
         << ",\"policy\":\"" << policy_name(lc.policy) << "\""
         << ",\"seed\":" << lc.seed
         << ",\"ok\":" << (o.ok() ? "true" : "false")
         << ",\"error\":\"" << json_escape(o.error) << "\""
         << ",\"cores\":" << lc.cores
         << ",\"backlog\":" << lc.backlog
         << ",\"offered_hs_s\":" << fmt_rate(m.offered_rate)
         << ",\"achieved_hs_s\":" << fmt_rate(m.achieved_rate)
         << ",\"capacity_hs_s\":" << fmt_rate(m.analytic_capacity)
         << ",\"p50_ms\":" << fmt_ms_json(m.p50)
         << ",\"p90_ms\":" << fmt_ms_json(m.p90)
         << ",\"p99_ms\":" << fmt_ms_json(m.p99)
         << ",\"p999_ms\":" << fmt_ms_json(m.p999)
         << ",\"mean_queue_depth\":" << fmt_rate(m.mean_queue_depth)
         << ",\"core_utilization\":" << fmt_rate(m.core_utilization)
         << ",\"arrivals\":" << m.arrivals
         << ",\"completed\":" << m.completed
         << ",\"dropped\":" << m.dropped
         << ",\"timed_out\":" << m.timed_out;
    if (batch_) out_ << ",\"batch\":" << lc.batch;
    if (lc.is_fleet()) {
      out_ << ",\"servers\":" << lc.servers
           << ",\"balancer\":\"" << loadgen::balancer_name(lc.balancer)
           << "\""
           << ",\"shards\":" << lc.shards
           << ",\"min_server_util\":" << fmt_rate(m.min_server_util)
           << ",\"max_server_util\":" << fmt_rate(m.max_server_util)
           << ",\"churn_arrived\":" << m.churn_arrived
           << ",\"churn_departed\":" << m.churn_departed
           << ",\"slo_ms\":" << fmt_ms(lc.slo_s)
           << ",\"within_slo\":" << (within_slo(lc, o) ? "true" : "false");
    }
    out_ << "}\n";
    return;
  }
  const auto& c = o.cell.config;
  const auto& r = o.result;
  out_ << "{\"campaign\":\"" << json_escape(o.campaign) << "\""
       << ",\"id\":\"" << json_escape(o.cell.id) << "\""
       << ",\"ka\":\"" << json_escape(c.ka) << "\""
       << ",\"sa\":\"" << json_escape(c.sa) << "\""
       << ",\"scenario\":\"" << json_escape(o.cell.scenario) << "\""
       << ",\"seed\":" << c.seed
       << ",\"ok\":" << (o.ok() ? "true" : "false")
       << ",\"timed_out\":" << (r.timed_out ? "true" : "false")
       << ",\"error\":\"" << json_escape(o.error) << "\""
       << ",\"samples\":" << r.samples.size()
       << ",\"median_part_a_ms\":" << fmt_ms(r.median_part_a)
       << ",\"median_part_b_ms\":" << fmt_ms(r.median_part_b)
       << ",\"median_total_ms\":" << fmt_ms(r.median_total)
       << ",\"client_bytes\":" << r.client_bytes
       << ",\"server_bytes\":" << r.server_bytes
       << ",\"handshakes_60s\":" << r.total_handshakes_60s << "}\n";
}

void CsvSink::begin(const CampaignSpec& spec, const RunnerOptions&) {
  batch_ = is_batch_campaign(spec);
  if (is_loadgen_campaign(spec)) {
    out_ << "campaign,id,ka,sa,arrival,policy,seed,ok,error,cores,backlog,"
            "offered_hs_s,achieved_hs_s,capacity_hs_s,p50_ms,p90_ms,p99_ms,"
            "p999_ms,mean_queue_depth,core_utilization,arrivals,completed,"
            "dropped,timed_out";
    if (batch_) out_ << ",batch";
    if (is_fleet_campaign(spec))
      out_ << ",servers,balancer,shards,min_server_util,max_server_util,"
              "churn_arrived,churn_departed,slo_ms,within_slo";
    out_ << "\n";
    return;
  }
  out_ << "campaign,id,ka,sa,scenario,seed,ok,timed_out,error,samples,"
          "median_part_a_ms,median_part_b_ms,median_total_ms,"
          "client_bytes,server_bytes,handshakes_60s\n";
}

void CsvSink::cell(const CellOutcome& o) {
  if (o.cell.loadgen) {
    check_percentiles(o);
    const auto& lc = *o.cell.loadgen;
    const auto& m = o.load;
    out_ << csv_escape(o.campaign) << ',' << csv_escape(o.cell.id) << ','
         << csv_escape(lc.ka) << ',' << csv_escape(lc.sa) << ','
         << arrival_name(lc.arrival) << ',' << policy_name(lc.policy) << ','
         << lc.seed << ',' << (o.ok() ? "true" : "false") << ','
         << csv_escape(o.error) << ',' << lc.cores << ',' << lc.backlog
         << ',' << fmt_rate(m.offered_rate) << ','
         << fmt_rate(m.achieved_rate) << ','
         << fmt_rate(m.analytic_capacity) << ',' << fmt_ms(m.p50) << ','
         << fmt_ms(m.p90) << ',' << fmt_ms(m.p99) << ',' << fmt_ms(m.p999)
         << ',' << fmt_rate(m.mean_queue_depth) << ','
         << fmt_rate(m.core_utilization) << ',' << m.arrivals << ','
         << m.completed << ',' << m.dropped << ',' << m.timed_out;
    if (batch_) out_ << ',' << lc.batch;
    if (lc.is_fleet()) {
      out_ << ',' << lc.servers << ','
           << loadgen::balancer_name(lc.balancer) << ',' << lc.shards << ','
           << fmt_rate(m.min_server_util) << ','
           << fmt_rate(m.max_server_util) << ',' << m.churn_arrived << ','
           << m.churn_departed << ',' << fmt_ms(lc.slo_s) << ','
           << (within_slo(lc, o) ? "true" : "false");
    }
    out_ << '\n';
    return;
  }
  const auto& c = o.cell.config;
  const auto& r = o.result;
  out_ << csv_escape(o.campaign) << ',' << csv_escape(o.cell.id) << ','
       << csv_escape(c.ka) << ',' << csv_escape(c.sa) << ','
       << csv_escape(o.cell.scenario) << ',' << c.seed << ','
       << (o.ok() ? "true" : "false") << ','
       << (r.timed_out ? "true" : "false") << ',' << csv_escape(o.error)
       << ',' << r.samples.size() << ',' << fmt_ms(r.median_part_a) << ','
       << fmt_ms(r.median_part_b) << ',' << fmt_ms(r.median_total) << ','
       << r.client_bytes << ',' << r.server_bytes << ','
       << r.total_handshakes_60s << '\n';
}

void AsciiSink::begin(const CampaignSpec& spec, const RunnerOptions& opts) {
  layout_ = spec.ascii_layout;
  loadgen_ = is_loadgen_campaign(spec);
  char head[256];
  std::snprintf(head, sizeof(head), "%s — %s (%d cells)\n",
                spec.name.c_str(), spec.description.c_str(),
                static_cast<int>(spec.cells.size()));
  out_ << head;
  (void)opts;
  if (loadgen_) {
    std::snprintf(head, sizeof(head),
                  "%-34s %9s %9s %9s %9s %9s %7s %6s %6s\n", "cell",
                  "off[1/s]", "ach[1/s]", "cap[1/s]", "p50(ms)", "p99(ms)",
                  "qdepth", "drop", "t/o");
    out_ << head;
    return;
  }
  if (layout_ == AsciiLayout::kPerCell) {
    std::snprintf(head, sizeof(head),
                  "%-34s %10s %10s %10s %8s %10s %10s\n", "cell", "A med(ms)",
                  "B med(ms)", "tot(ms)", "# Total", "Client(B)",
                  "Server(B)");
    out_ << head;
  }
}

void AsciiSink::cell(const CellOutcome& o) {
  if (o.cell.loadgen) {
    check_percentiles(o);
    char line[256];
    if (!o.ok()) {
      std::snprintf(line, sizeof(line), "%-34s FAILED: %s\n",
                    o.cell.id.c_str(), o.error.c_str());
      out_ << line;
      return;
    }
    const auto& m = o.load;
    std::snprintf(line, sizeof(line),
                  "%-34s %9.1f %9.1f %9.1f %9.2f %9.2f %7.2f %6lld %6lld\n",
                  o.cell.id.c_str(), m.offered_rate, m.achieved_rate,
                  m.analytic_capacity, m.p50 * 1e3, m.p99 * 1e3,
                  m.mean_queue_depth, m.dropped, m.timed_out);
    out_ << line;
    return;
  }
  if (layout_ == AsciiLayout::kScenarioMatrix) {
    matrix_cells_.push_back(o);
    return;
  }
  char line[256];
  if (!o.ok()) {
    std::snprintf(line, sizeof(line), "%-34s FAILED: %s\n",
                  o.cell.id.c_str(), o.error.c_str());
    out_ << line;
    return;
  }
  const auto& r = o.result;
  std::snprintf(line, sizeof(line),
                "%-34s %10.2f %10.2f %10.2f %7.1fk %10zu %10zu\n",
                o.cell.id.c_str(), r.median_part_a * 1e3,
                r.median_part_b * 1e3, r.median_total * 1e3,
                static_cast<double>(r.total_handshakes_60s) / 1000.0,
                r.client_bytes, r.server_bytes);
  out_ << line;
}

void AsciiSink::finish() {
  if (layout_ != AsciiLayout::kScenarioMatrix) return;
  // Rows: "ka/sa" in first-seen order; columns: scenarios in first-seen
  // order; cell value: median total latency (ms).
  std::vector<std::string> scenarios, rows;
  std::map<std::pair<std::string, std::string>, const CellOutcome*> grid;
  for (const auto& o : matrix_cells_) {
    std::string row = o.cell.config.ka + "/" + o.cell.config.sa;
    if (std::find(rows.begin(), rows.end(), row) == rows.end())
      rows.push_back(row);
    if (std::find(scenarios.begin(), scenarios.end(), o.cell.scenario) ==
        scenarios.end())
      scenarios.push_back(o.cell.scenario);
    grid[{row, o.cell.scenario}] = &o;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-34s", "cell");
  out_ << buf;
  for (const auto& s : scenarios) {
    std::snprintf(buf, sizeof(buf), " %12.12s", s.c_str());
    out_ << buf;
  }
  out_ << '\n';
  for (const auto& row : rows) {
    std::snprintf(buf, sizeof(buf), "%-34s", row.c_str());
    out_ << buf;
    for (const auto& s : scenarios) {
      auto it = grid.find({row, s});
      if (it != grid.end() && it->second->ok())
        std::snprintf(buf, sizeof(buf), " %12.2f",
                      it->second->result.median_total * 1e3);
      else
        std::snprintf(buf, sizeof(buf), " %12s", "FAIL");
      out_ << buf;
    }
    out_ << '\n';
  }
}

}  // namespace pqtls::campaign
