// Campaign specifications: a named experiment matrix is a list of cells,
// each a fully-described testbed::ExperimentConfig plus a stable string id.
// The id is the cell's identity across runs — the runner derives the cell's
// seed from it, result rows carry it, and the `all` campaign deduplicates
// on it. Built-in campaigns cover the paper's artifacts (Tables 2a/2b/3/
// 4a/4b, Figures 3/4).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "loadgen/loadgen.hpp"
#include "testbed/testbed.hpp"

namespace pqtls::campaign {

/// One experiment in a campaign. `config` carries everything except the
/// seeds and time model, which the runner fills in from its options.
/// When `loadgen` is set the cell is a load-generation simulation instead
/// of a testbed experiment (config.ka/sa mirror the loadgen pair so sinks
/// and ids stay uniform); loadgen cells always run in modeled virtual time.
struct Cell {
  std::string id;        // stable unique id, e.g. "kyber512/rsa:2048/lte-m"
  std::string scenario;  // human-readable scenario label ("" = no emulation)
  testbed::ExperimentConfig config;
  std::optional<loadgen::LoadConfig> loadgen;
};

/// How the ASCII sink renders this campaign.
enum class AsciiLayout {
  kPerCell,         // one row per cell (Table 2 style)
  kScenarioMatrix,  // algorithms x scenarios, median totals (Table 4 style)
};

struct CampaignSpec {
  std::string name;
  std::string description;
  AsciiLayout ascii_layout = AsciiLayout::kPerCell;
  std::vector<Cell> cells;
};

/// All built-in campaigns, including the deduplicated union campaign "all".
const std::vector<CampaignSpec>& campaigns();

/// Look up a campaign by name; nullptr when unknown.
const CampaignSpec* find_campaign(std::string_view name);

/// Lowercase slug of a scenario label for use inside cell ids
/// ("High Loss (10%)" -> "high-loss-10").
std::string scenario_slug(std::string_view label);

}  // namespace pqtls::campaign
