#include "campaign/options.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace pqtls::campaign {

namespace {

bool parse_u64(const char* text, std::uint64_t& out) {
  if (!text || !*text) return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (text[0] == '-') return false;  // strtoull silently wraps negatives
  out = static_cast<std::uint64_t>(value);
  return true;
}

}  // namespace

int positive_int_or(const char* text, int fallback, const char* what) {
  std::uint64_t value = 0;
  if (parse_u64(text, value) && value >= 1 && value <= 1'000'000'000)
    return static_cast<int>(value);
  if (text)
    std::fprintf(stderr,
                 "warning: ignoring invalid %s '%s' (want a positive "
                 "integer); using %d\n",
                 what, text, fallback);
  return fallback;
}

std::uint64_t u64_or(const char* text, std::uint64_t fallback,
                     const char* what) {
  std::uint64_t value = 0;
  if (parse_u64(text, value)) return value;
  if (text)
    std::fprintf(stderr,
                 "warning: ignoring invalid %s '%s' (want an unsigned "
                 "integer); using %llu\n",
                 what, text, static_cast<unsigned long long>(fallback));
  return fallback;
}

int env_samples(int fallback) {
  const char* env = std::getenv("PQTLS_SAMPLES");
  if (!env) return fallback;
  return positive_int_or(env, fallback, "PQTLS_SAMPLES");
}

int env_workers(int fallback) {
  const char* env = std::getenv("PQTLS_WORKERS");
  if (!env) return fallback;
  return positive_int_or(env, fallback, "PQTLS_WORKERS");
}

}  // namespace pqtls::campaign
