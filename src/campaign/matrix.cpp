#include "campaign/matrix.hpp"

namespace pqtls::campaign {

const std::vector<AlgRow>& table2a_kas() {
  static const std::vector<AlgRow> rows = {
      {1, "x25519"},        {1, "bikel1"},        {1, "hqc128"},
      {1, "kyber512"},      {1, "kyber90s512"},   {1, "p256"},
      {1, "p256_bikel1"},   {1, "p256_hqc128"},   {1, "p256_kyber512"},
      {3, "bikel3"},        {3, "hqc192"},        {3, "kyber768"},
      {3, "kyber90s768"},   {3, "p384"},          {3, "p384_bikel3"},
      {3, "p384_hqc192"},   {3, "p384_kyber768"}, {5, "hqc256"},
      {5, "kyber1024"},     {5, "kyber90s1024"},  {5, "p521"},
      {5, "p521_hqc256"},   {5, "p521_kyber1024"},
  };
  return rows;
}

const std::vector<AlgRow>& table2b_sas() {
  static const std::vector<AlgRow> rows = {
      {0, "rsa:1024"},        {0, "rsa:2048"},
      {1, "falcon512"},       {1, "rsa:3072"},
      {1, "rsa:4096"},        {1, "sphincs128"},
      {1, "p256_falcon512"},  {1, "p256_sphincs128"},
      {2, "dilithium2"},      {2, "dilithium2_aes"},
      {2, "p256_dilithium2"},
      {3, "dilithium3"},      {3, "dilithium3_aes"},
      {3, "sphincs192"},      {3, "p384_dilithium3"},
      {3, "p384_sphincs192"},
      {5, "dilithium5"},      {5, "dilithium5_aes"},
      {5, "falcon1024"},      {5, "sphincs256"},
      {5, "p521_dilithium5"}, {5, "p521_falcon1024"},
      {5, "p521_sphincs256"},
  };
  return rows;
}

const std::vector<AlgRow>& table4b_sas() {
  static const std::vector<AlgRow> rows = [] {
    std::vector<AlgRow> out = table2b_sas();
    out.insert(out.begin() + 11, {2, "rsa3072_dilithium2"});
    return out;
  }();
  return rows;
}

const std::vector<AlgRow>& loadgen_kas() {
  static const std::vector<AlgRow> rows = {
      {1, "x25519"},   {1, "kyber512"}, {1, "bikel1"},
      {1, "hqc128"},   {1, "p256_kyber512"}, {3, "kyber768"},
  };
  return rows;
}

const std::vector<AlgRow>& loadgen_sas() {
  static const std::vector<AlgRow> rows = {
      {0, "rsa:2048"},   {1, "falcon512"},  {1, "rsa:3072"},
      {1, "sphincs128"}, {2, "dilithium2"}, {2, "p256_dilithium2"},
  };
  return rows;
}

const std::vector<LevelCombos>& fig3_levels() {
  static const std::vector<LevelCombos> levels = {
      {"level1+2",
       {"x25519", "bikel1", "hqc128", "kyber512", "kyber90s512", "p256"},
       {"rsa:3072", "falcon512", "sphincs128", "dilithium2", "dilithium2_aes"}},
      {"level3",
       {"bikel3", "hqc192", "kyber768", "kyber90s768", "p384"},
       {"dilithium3", "dilithium3_aes", "sphincs192"}},
      {"level5",
       {"hqc256", "kyber1024", "kyber90s1024", "p521"},
       {"dilithium5", "dilithium5_aes", "falcon1024", "sphincs256"}},
  };
  return levels;
}

}  // namespace pqtls::campaign
