#include "campaign/matrix.hpp"

#include "crypto/catalog.hpp"

namespace pqtls::campaign {

namespace {

using crypto::AlgorithmCatalog;
using crypto::AlgorithmInfo;

// Rows point at the catalog's names: the catalog is a process-lifetime
// singleton, so the const char* handles stay valid.
AlgRow row_of(const AlgorithmInfo& info) {
  return {info.table_level, info.name.c_str()};
}

}  // namespace

const std::vector<AlgRow>& table2a_kas() {
  // The KEM registry is Table 2a's 23 key agreements in table order.
  static const std::vector<AlgRow> rows = [] {
    std::vector<AlgRow> out;
    for (const AlgorithmInfo& info : AlgorithmCatalog::instance().kems())
      out.push_back(row_of(info));
    return out;
  }();
  return rows;
}

const std::vector<AlgRow>& table2b_sas() {
  // Table 2b's 23 SAs are the catalog's headline signers (the registry
  // minus the SPHINCS+ "s" size-variants and the rsa3072_dilithium2
  // hybrid, which only Table 4b adds back).
  static const std::vector<AlgRow> rows = [] {
    std::vector<AlgRow> out;
    for (const AlgorithmInfo& info : AlgorithmCatalog::instance().signers())
      if (info.headline) out.push_back(row_of(info));
    return out;
  }();
  return rows;
}

const std::vector<AlgRow>& table4b_sas() {
  // Table 2b plus rsa3072_dilithium2, i.e. every signer except the
  // SPHINCS+ size-variants — again in registry (= table) order.
  static const std::vector<AlgRow> rows = [] {
    std::vector<AlgRow> out;
    for (const AlgorithmInfo& info : AlgorithmCatalog::instance().signers())
      if (info.headline || info.hybrid) out.push_back(row_of(info));
    return out;
  }();
  return rows;
}

const std::vector<AlgRow>& loadgen_kas() {
  // Hand-picked representatives (one per family); levels resolved through
  // the catalog so an unknown name fails loudly at first use.
  static const std::vector<AlgRow> rows = [] {
    std::vector<AlgRow> out;
    for (const char* name : {"x25519", "kyber512", "bikel1", "hqc128",
                             "p256_kyber512", "kyber768"})
      out.push_back(row_of(AlgorithmCatalog::instance().require_kem(name)));
    return out;
  }();
  return rows;
}

const std::vector<AlgRow>& loadgen_sas() {
  static const std::vector<AlgRow> rows = [] {
    std::vector<AlgRow> out;
    for (const char* name : {"rsa:2048", "falcon512", "rsa:3072", "sphincs128",
                             "dilithium2", "p256_dilithium2"})
      out.push_back(row_of(AlgorithmCatalog::instance().require_signer(name)));
    return out;
  }();
  return rows;
}

const std::vector<LevelCombos>& fig3_levels() {
  // Explicit, not derived: the paper groups levels one and two together and
  // keeps only rsa:3072 among the RSAs, choices the catalog cannot infer.
  static const std::vector<LevelCombos> levels = {
      {"level1+2",
       {"x25519", "bikel1", "hqc128", "kyber512", "kyber90s512", "p256"},
       {"rsa:3072", "falcon512", "sphincs128", "dilithium2", "dilithium2_aes"}},
      {"level3",
       {"bikel3", "hqc192", "kyber768", "kyber90s768", "p384"},
       {"dilithium3", "dilithium3_aes", "sphincs192"}},
      {"level5",
       {"hqc256", "kyber1024", "kyber90s1024", "p521"},
       {"dilithium5", "dilithium5_aes", "falcon1024", "sphincs256"}},
  };
  return levels;
}

}  // namespace pqtls::campaign
