// The campaign execution engine: a fixed-size thread pool pulls cells off a
// shared index, runs each experiment, and a reorder buffer hands completed
// outcomes to the result sinks strictly in cell order. Combined with the
// per-cell seed derivation and the testbed's modeled time mode this makes
// campaign output bit-identical at any worker count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"

namespace pqtls::campaign {

struct RunnerOptions {
  int workers = 1;
  /// >0: override every cell's sample count (e.g. CI smoke runs).
  int samples = 0;
  /// Campaign identity: cells derive their seeds from this, and PKI
  /// generation is cached under it across all cells.
  std::uint64_t base_seed = 0x715b3d;
  /// Modeled time is the campaign default — it is what makes results
  /// reproducible across runs and worker counts. kMeasured restores the
  /// paper-fidelity wall-time clock.
  testbed::TimeModel time_model = testbed::TimeModel::kModeled;
  /// Per-cell wall-clock budget in seconds (0 = unlimited). A cell over
  /// budget is recorded as timed out; the campaign continues.
  double max_cell_seconds = 0;
  /// Live one-line-per-cell progress on stderr.
  bool progress = false;
  /// When non-empty, record a flight trace of the FIRST sample of every
  /// testbed cell and write `<id>.jsonl` (golden-schema JSONL) plus
  /// `<id>.trace.json` (Chrome trace-event JSON, loadable in Perfetto)
  /// into this directory; `/` in cell ids becomes `-`. Empty (the
  /// default) installs no recorder, keeping campaign rows byte-identical
  /// to an untraced run.
  std::string trace_dir;
};

struct CellOutcome {
  std::string campaign;
  /// The cell as executed: config has the derived seed, pinned pki_seed,
  /// time model, and any sample-count override applied.
  Cell cell;
  testbed::ExperimentResult result;
  /// Populated instead of `result` when the cell is a loadgen simulation.
  loadgen::LoadMetrics load;
  /// Resolved crypto backend the cell ran under (backend::active_name()).
  /// Metadata only — never part of the default row bytes, which are
  /// backend-independent; JsonlSink emits it in the opt-in meta line.
  std::string backend;
  std::string error;  // nonempty: what went wrong (exception or no samples)
  double wall_seconds = 0;

  bool ok() const {
    return error.empty() && (cell.loadgen ? load.ok : result.ok);
  }
};

/// Result consumer. Sinks run on the coordinating thread and receive cells
/// strictly in campaign order regardless of completion order.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void begin(const CampaignSpec& spec, const RunnerOptions& opts) {
    (void)spec;
    (void)opts;
  }
  virtual void cell(const CellOutcome& outcome) = 0;
  virtual void finish() {}
};

/// Deterministic per-cell seed: mixes the campaign base seed with a hash of
/// the cell id (FNV-1a 64 through a SplitMix64 finalizer), so a cell's
/// random stream depends only on (base_seed, id) — never on scheduling.
std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::string_view cell_id);

/// Run every cell of `spec` and stream outcomes to `sinks` in cell order.
/// Returns the number of cells that failed or timed out (a failing cell
/// never aborts the campaign).
int run_campaign(const CampaignSpec& spec, const RunnerOptions& opts,
                 const std::vector<Sink*>& sinks);

}  // namespace pqtls::campaign
