// Result sinks for the campaign runner: machine-readable JSONL and CSV
// streams with a fixed schema (ka, sa, scenario, latency medians, data
// volumes, 60 s handshake rate, seed, ok flag), a human-readable ASCII
// renderer, and an in-memory collector for programmatic consumers (the
// converted bench binaries). Loadgen cells emit their own fixed row shape
// (offered/achieved/capacity rates, latency percentiles, queue depth,
// drop/timeout counts) — both schemas are golden-file locked. All numeric
// formatting is locale-independent and fixed-precision so equal results
// serialize to equal bytes.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"

namespace pqtls::campaign {

/// One JSON object per cell, in campaign order. With `emit_meta` the stream
/// opens with one `{"meta":true,...}` line carrying run provenance (campaign
/// name, resolved crypto backend, worker count); the default keeps the
/// stream byte-identical to the golden rows regardless of backend.
class JsonlSink : public Sink {
 public:
  explicit JsonlSink(std::ostream& out, bool emit_meta = false)
      : out_(out), emit_meta_(emit_meta) {}
  void begin(const CampaignSpec& spec, const RunnerOptions& opts) override;
  void cell(const CellOutcome& outcome) override;

 private:
  std::ostream& out_;
  bool emit_meta_ = false;
  bool batch_ = false;  // campaign sweeps server-side batching -> batch field
};

/// Header row plus one CSV row per cell, same fields as the JSONL sink.
class CsvSink : public Sink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}
  void begin(const CampaignSpec& spec, const RunnerOptions& opts) override;
  void cell(const CellOutcome& outcome) override;

 private:
  std::ostream& out_;
  bool batch_ = false;  // campaign sweeps server-side batching -> batch column
};

/// Human-readable rendering honouring the campaign's AsciiLayout: one row
/// per cell (Table 2 style), or an algorithms-by-scenarios matrix of median
/// totals rendered at finish() (Table 4 style).
class AsciiSink : public Sink {
 public:
  explicit AsciiSink(std::ostream& out) : out_(out) {}
  void begin(const CampaignSpec& spec, const RunnerOptions& opts) override;
  void cell(const CellOutcome& outcome) override;
  void finish() override;

 private:
  std::ostream& out_;
  AsciiLayout layout_ = AsciiLayout::kPerCell;
  bool loadgen_ = false;  // campaign-wide: loadgen cells use their own row
  std::vector<CellOutcome> matrix_cells_;  // buffered for kScenarioMatrix
};

/// Keeps every outcome in memory, in campaign order.
class CollectSink : public Sink {
 public:
  void cell(const CellOutcome& outcome) override {
    outcomes_.push_back(outcome);
  }
  const std::vector<CellOutcome>& outcomes() const { return outcomes_; }

 private:
  std::vector<CellOutcome> outcomes_;
};

}  // namespace pqtls::campaign
