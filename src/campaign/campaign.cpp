#include "campaign/campaign.hpp"

#include <cctype>
#include <set>

#include "campaign/matrix.hpp"

namespace pqtls::campaign {

std::string scenario_slug(std::string_view label) {
  std::string out;
  bool pending_dash = false;
  for (char ch : label) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      if (pending_dash && !out.empty()) out.push_back('-');
      pending_dash = false;
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(ch))));
    } else {
      pending_dash = true;
    }
  }
  return out;
}

namespace {

Cell make_cell(const std::string& ka, const std::string& sa, int samples) {
  Cell cell;
  cell.id = ka + "/" + sa;
  cell.config.ka = ka;
  cell.config.sa = sa;
  cell.config.sample_handshakes = samples;
  return cell;
}

CampaignSpec build_table2a() {
  CampaignSpec spec;
  spec.name = "table2a";
  spec.description = "Table 2a: 23 KAs with rsa:2048";
  for (const auto& row : table2a_kas())
    spec.cells.push_back(make_cell(row.name, "rsa:2048", 25));
  return spec;
}

CampaignSpec build_table2b() {
  CampaignSpec spec;
  spec.name = "table2b";
  spec.description = "Table 2b: 23 SAs with x25519";
  for (const auto& row : table2b_sas())
    spec.cells.push_back(make_cell("x25519", row.name, 15));
  return spec;
}

CampaignSpec build_table3() {
  CampaignSpec spec;
  spec.name = "table3";
  spec.description = "Table 3: white-box CPU attribution for selected pairs";
  static constexpr const char* kPairs[][2] = {
      {"x25519", "rsa:2048"},        {"kyber512", "dilithium2"},
      {"bikel1", "dilithium2"},      {"kyber512", "sphincs128"},
      {"hqc128", "falcon512"},       {"p256_kyber512", "p256_dilithium2"},
      {"kyber768", "dilithium3"},    {"kyber1024", "dilithium5"},
  };
  for (const auto& pair : kPairs) {
    Cell cell = make_cell(pair[0], pair[1], 12);
    cell.id += "/whitebox";
    cell.config.white_box = true;
    spec.cells.push_back(std::move(cell));
  }
  return spec;
}

CampaignSpec build_table4(const char* name, const char* description,
                          const std::vector<AlgRow>& rows, bool vary_ka,
                          int samples) {
  CampaignSpec spec;
  spec.name = name;
  spec.description = description;
  spec.ascii_layout = AsciiLayout::kScenarioMatrix;
  for (const auto& row : rows) {
    for (const auto& scenario : testbed::standard_scenarios()) {
      Cell cell = vary_ka ? make_cell(row.name, "rsa:2048", samples)
                          : make_cell("x25519", row.name, samples);
      cell.id += "/" + scenario_slug(scenario.name);
      cell.scenario = scenario.name;
      cell.config.netem = scenario.netem;
      spec.cells.push_back(std::move(cell));
    }
  }
  return spec;
}

CampaignSpec build_fig3() {
  CampaignSpec spec;
  spec.name = "fig3";
  spec.description =
      "Figure 3: per-level KA x SA grid under both server buffering modes";
  for (const auto& level : fig3_levels()) {
    for (const char* ka : level.kas) {
      for (const char* sa : level.sas) {
        for (tls::Buffering buffering :
             {tls::Buffering::kDefault, tls::Buffering::kImmediate}) {
          Cell cell = make_cell(ka, sa, 9);
          cell.id += buffering == tls::Buffering::kDefault ? "/buffered"
                                                           : "/immediate";
          cell.config.buffering = buffering;
          spec.cells.push_back(std::move(cell));
        }
      }
    }
  }
  return spec;
}

CampaignSpec build_fig4() {
  CampaignSpec spec;
  spec.name = "fig4";
  spec.description =
      "Figure 4: latency-ranking inputs (KAs with rsa:2048, SAs with x25519)";
  std::set<std::string> seen;
  for (const auto& row : table2a_kas()) {
    Cell cell = make_cell(row.name, "rsa:2048", 9);
    if (seen.insert(cell.id).second) spec.cells.push_back(std::move(cell));
  }
  for (const auto& row : table2b_sas()) {
    Cell cell = make_cell("x25519", row.name, 9);
    if (seen.insert(cell.id).second) spec.cells.push_back(std::move(cell));
  }
  return spec;
}

CampaignSpec build_all(const std::vector<CampaignSpec>& others) {
  CampaignSpec spec;
  spec.name = "all";
  spec.description = "Union of every built-in campaign (deduplicated by id)";
  std::set<std::string> seen;
  for (const auto& other : others)
    for (const auto& cell : other.cells)
      if (seen.insert(cell.id).second) spec.cells.push_back(cell);
  return spec;
}

}  // namespace

const std::vector<CampaignSpec>& campaigns() {
  static const std::vector<CampaignSpec> all = [] {
    std::vector<CampaignSpec> out;
    out.push_back(build_table2a());
    out.push_back(build_table2b());
    out.push_back(build_table3());
    out.push_back(build_table4("table4a",
                               "Table 4a: KAs x network scenarios",
                               table2a_kas(), /*vary_ka=*/true, 9));
    out.push_back(build_table4("table4b",
                               "Table 4b: SAs x network scenarios",
                               table4b_sas(), /*vary_ka=*/false, 7));
    out.push_back(build_fig3());
    out.push_back(build_fig4());
    out.push_back(build_all(out));
    return out;
  }();
  return all;
}

const CampaignSpec* find_campaign(std::string_view name) {
  for (const auto& spec : campaigns())
    if (spec.name == name) return &spec;
  return nullptr;
}

}  // namespace pqtls::campaign
