#include "campaign/campaign.hpp"

#include <cctype>
#include <cstdio>
#include <set>

#include "campaign/matrix.hpp"

namespace pqtls::campaign {

std::string scenario_slug(std::string_view label) {
  std::string out;
  bool pending_dash = false;
  for (char ch : label) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      if (pending_dash && !out.empty()) out.push_back('-');
      pending_dash = false;
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(ch))));
    } else {
      pending_dash = true;
    }
  }
  return out;
}

namespace {

Cell make_cell(const std::string& ka, const std::string& sa, int samples) {
  Cell cell;
  cell.id = ka + "/" + sa;
  cell.config.ka = ka;
  cell.config.sa = sa;
  cell.config.sample_handshakes = samples;
  return cell;
}

CampaignSpec build_table2a() {
  CampaignSpec spec;
  spec.name = "table2a";
  spec.description = "Table 2a: 23 KAs with rsa:2048";
  for (const auto& row : table2a_kas())
    spec.cells.push_back(make_cell(row.name, "rsa:2048", 25));
  return spec;
}

CampaignSpec build_table2b() {
  CampaignSpec spec;
  spec.name = "table2b";
  spec.description = "Table 2b: 23 SAs with x25519";
  for (const auto& row : table2b_sas())
    spec.cells.push_back(make_cell("x25519", row.name, 15));
  return spec;
}

CampaignSpec build_table3() {
  CampaignSpec spec;
  spec.name = "table3";
  spec.description = "Table 3: white-box CPU attribution for selected pairs";
  static constexpr const char* kPairs[][2] = {
      {"x25519", "rsa:2048"},        {"kyber512", "dilithium2"},
      {"bikel1", "dilithium2"},      {"kyber512", "sphincs128"},
      {"hqc128", "falcon512"},       {"p256_kyber512", "p256_dilithium2"},
      {"kyber768", "dilithium3"},    {"kyber1024", "dilithium5"},
  };
  for (const auto& pair : kPairs) {
    Cell cell = make_cell(pair[0], pair[1], 12);
    cell.id += "/whitebox";
    cell.config.white_box = true;
    spec.cells.push_back(std::move(cell));
  }
  return spec;
}

CampaignSpec build_table4(const char* name, const char* description,
                          const std::vector<AlgRow>& rows, bool vary_ka,
                          int samples) {
  CampaignSpec spec;
  spec.name = name;
  spec.description = description;
  spec.ascii_layout = AsciiLayout::kScenarioMatrix;
  for (const auto& row : rows) {
    for (const auto& scenario : testbed::standard_scenarios()) {
      Cell cell = vary_ka ? make_cell(row.name, "rsa:2048", samples)
                          : make_cell("x25519", row.name, samples);
      cell.id += "/" + scenario_slug(scenario.name);
      cell.scenario = scenario.name;
      cell.config.netem = scenario.netem;
      spec.cells.push_back(std::move(cell));
    }
  }
  return spec;
}

CampaignSpec build_fig3() {
  CampaignSpec spec;
  spec.name = "fig3";
  spec.description =
      "Figure 3: per-level KA x SA grid under both server buffering modes";
  for (const auto& level : fig3_levels()) {
    for (const char* ka : level.kas) {
      for (const char* sa : level.sas) {
        for (tls::Buffering buffering :
             {tls::Buffering::kDefault, tls::Buffering::kImmediate}) {
          Cell cell = make_cell(ka, sa, 9);
          cell.id += buffering == tls::Buffering::kDefault ? "/buffered"
                                                           : "/immediate";
          cell.config.buffering = buffering;
          spec.cells.push_back(std::move(cell));
        }
      }
    }
  }
  return spec;
}

CampaignSpec build_fig4() {
  CampaignSpec spec;
  spec.name = "fig4";
  spec.description =
      "Figure 4: latency-ranking inputs (KAs with rsa:2048, SAs with x25519)";
  std::set<std::string> seen;
  for (const auto& row : table2a_kas()) {
    Cell cell = make_cell(row.name, "rsa:2048", 9);
    if (seen.insert(cell.id).second) spec.cells.push_back(std::move(cell));
  }
  for (const auto& row : table2b_sas()) {
    Cell cell = make_cell("x25519", row.name, 9);
    if (seen.insert(cell.id).second) spec.cells.push_back(std::move(cell));
  }
  return spec;
}

// Loadgen capacity cells: each (algorithm, load factor) pair is one
// simulated Poisson run against a 4-core server at a fraction of its
// analytic capacity — below the knee (0.5), near it (0.9), and past
// saturation (1.3). Kept short (4 virtual seconds) so campaigns stay fast;
// the CLI's --sweep mode draws the full curve.
CampaignSpec build_loadgen(const char* name, const char* description,
                           const std::vector<AlgRow>& rows, bool vary_ka) {
  CampaignSpec spec;
  spec.name = name;
  spec.description = description;
  static constexpr double kLoadFactors[] = {0.5, 0.9, 1.3};
  for (const auto& row : rows) {
    for (double factor : kLoadFactors) {
      Cell cell;
      loadgen::LoadConfig load;
      load.ka = vary_ka ? row.name : "x25519";
      load.sa = vary_ka ? "rsa:2048" : row.name;
      load.arrival = loadgen::Arrival::kPoisson;
      load.load_factor = factor;
      load.cores = 4;
      load.backlog = 256;
      load.timeout_s = 1.0;
      load.duration_s = 4.0;
      load.warmup_s = 0.5;
      char suffix[32];
      std::snprintf(suffix, sizeof(suffix), "loadgen-%.1fx", factor);
      cell.id = load.ka + "/" + load.sa + "/" + suffix;
      cell.config.ka = load.ka;
      cell.config.sa = load.sa;
      cell.loadgen = std::move(load);
      spec.cells.push_back(std::move(cell));
    }
  }
  return spec;
}

// Batched-server-ops campaign: the same 4-core near-knee Poisson cell as
// the loadgen campaigns, swept over the server-side batching factor
// (LoadConfig::batch -> CostModel::kem_encaps_batched). batch=1 charges
// the exact unbatched profile, so the first cell of each pair doubles as
// a cross-check against the loadgen_* campaigns; larger batches show the
// amortization moving the capacity knee.
CampaignSpec build_loadgen_batch() {
  CampaignSpec spec;
  spec.name = "loadgen_batch";
  spec.description =
      "Batched server ops: amortized Kyber encaps at batch 1/8/32, 4-core "
      "server at 0.9x analytic capacity";
  static constexpr const char* kPairs[][2] = {
      {"kyber512", "dilithium2"},
      {"kyber768", "dilithium3"},
  };
  static constexpr int kBatches[] = {1, 8, 32};
  for (const auto& pair : kPairs) {
    for (int batch : kBatches) {
      Cell cell;
      loadgen::LoadConfig load;
      load.ka = pair[0];
      load.sa = pair[1];
      load.arrival = loadgen::Arrival::kPoisson;
      load.load_factor = 0.9;
      load.cores = 4;
      load.backlog = 256;
      load.timeout_s = 1.0;
      load.duration_s = 4.0;
      load.warmup_s = 0.5;
      load.batch = batch;
      char suffix[32];
      std::snprintf(suffix, sizeof(suffix), "batch-%d", batch);
      cell.id = load.ka + "/" + load.sa + "/" + suffix;
      cell.config.ka = load.ka;
      cell.config.sa = load.sa;
      cell.loadgen = std::move(load);
      spec.cells.push_back(std::move(cell));
    }
  }
  return spec;
}

// Fleet campaign: the capacity-knee surface of a multi-server fleet —
// fleet size x algorithm pair x balancing policy at 90% of aggregate
// analytic capacity, plus one churn cell (clients arriving/departing
// mid-run, two event-loop shards) and one heterogeneous-client-class cell
// (wired / LTE-M / 5G mix from the netem scenario set). Rows carry SLO
// columns (p99 against slo_ms, <=1% loss), golden-locked like every other
// campaign and byte-identical at any worker or shard count.
CampaignSpec build_fleet() {
  CampaignSpec spec;
  spec.name = "fleet";
  spec.description =
      "Fleet capacity knee: servers x algorithm x balancing policy at 0.9x "
      "aggregate capacity, with churn and client-class cells";
  static constexpr const char* kPairs[][2] = {
      {"x25519", "rsa:2048"},
      {"kyber512", "dilithium2"},
      {"kyber512", "sphincs128"},
  };
  static constexpr loadgen::BalancerKind kBalancers[] = {
      loadgen::BalancerKind::kRoundRobin,
      loadgen::BalancerKind::kLeastLoaded,
      loadgen::BalancerKind::kPowerOfTwo,
  };
  auto base = [](const char* ka, const char* sa) {
    loadgen::LoadConfig load;
    load.ka = ka;
    load.sa = sa;
    load.arrival = loadgen::Arrival::kPoisson;
    load.load_factor = 0.9;
    load.cores = 4;
    load.backlog = 256;
    load.timeout_s = 1.0;
    load.duration_s = 2.0;
    load.warmup_s = 0.25;
    return load;
  };
  auto add = [&spec](loadgen::LoadConfig load, const std::string& suffix) {
    Cell cell;
    cell.id = load.ka + "/" + load.sa + "/" + suffix;
    cell.config.ka = load.ka;
    cell.config.sa = load.sa;
    cell.loadgen = std::move(load);
    spec.cells.push_back(std::move(cell));
  };
  for (const auto& pair : kPairs) {
    for (int servers : {2, 4}) {
      for (loadgen::BalancerKind balancer : kBalancers) {
        loadgen::LoadConfig load = base(pair[0], pair[1]);
        load.servers = servers;
        load.balancer = balancer;
        char suffix[48];
        std::snprintf(suffix, sizeof(suffix), "fleet-%ds-%s", servers,
                      loadgen::balancer_name(balancer));
        add(std::move(load), suffix);
      }
    }
  }
  {
    // Churn: a closed-loop base population plus clients arriving at 20/s
    // with ~1 s lifetimes, on two shards (results are shard-invariant).
    loadgen::LoadConfig load = base("x25519", "rsa:2048");
    load.arrival = loadgen::Arrival::kClosed;
    load.clients = 32;
    load.servers = 4;
    load.balancer = loadgen::BalancerKind::kLeastLoaded;
    load.shards = 2;
    load.churn_rate = 20.0;
    load.churn_lifetime_s = 1.0;
    add(std::move(load), "fleet-churn");
  }
  {
    // Heterogeneous client classes from the standard netem scenario set.
    loadgen::LoadConfig load = base("kyber512", "dilithium2");
    load.servers = 4;
    load.balancer = loadgen::BalancerKind::kPowerOfTwo;
    load.client_classes = {
        {"wired", {.loss = 0, .delay_s = 0.005, .rate_bps = 0}, 0.6},
        {"lte-m", {.loss = 0.10, .delay_s = 0.1, .rate_bps = 1e6}, 0.2},
        {"5g", {.loss = 0.04, .delay_s = 0.022, .rate_bps = 880e6}, 0.2},
    };
    add(std::move(load), "fleet-classes");
  }
  return spec;
}

// Session-resumption campaign: every representative pair measured three
// ways — full handshake, every-sample psk_dhe_ke resumption, and resumption
// with accepted 0-RTT early data. The /full cell re-measures the pair under
// this campaign's own derived seed so the three rows of a pair differ only
// in the resumption knobs, never in the seed-mixing path.
CampaignSpec build_resumption() {
  CampaignSpec spec;
  spec.name = "resumption";
  spec.description =
      "Session resumption: full vs resumed vs 0-RTT per representative pair";
  static constexpr const char* kPairs[][2] = {
      {"x25519", "rsa:2048"},     {"kyber512", "dilithium2"},
      {"kyber768", "dilithium3"}, {"kyber1024", "dilithium5"},
      {"kyber512", "falcon512"},
  };
  struct Variant {
    const char* suffix;
    double ratio;
    bool early;
  };
  static constexpr Variant kVariants[] = {
      {"full", 0.0, false}, {"resumed", 1.0, false}, {"0rtt", 1.0, true}};
  for (const auto& pair : kPairs) {
    for (const Variant& variant : kVariants) {
      Cell cell = make_cell(pair[0], pair[1], 15);
      cell.id += std::string("/") + variant.suffix;
      cell.config.resumption_ratio = variant.ratio;
      cell.config.early_data = variant.early;
      spec.cells.push_back(std::move(cell));
    }
  }
  return spec;
}

// Certificate-hierarchy campaign: a placement matrix (one or two same-SA
// intermediates, and a Dilithium2 root+intermediate under a pair-SA leaf —
// the "fast placement" the Merkle-tree-certs discussion motivates) crossed
// with the three certificate-flight transports: full chain, RFC 8879
// compressed, and a Merkle inclusion proof against a pinned tree head.
// All cells ride kyber512 so the KA contribution is constant and the
// certificate flight dominates the deltas.
CampaignSpec build_cert_chains() {
  CampaignSpec spec;
  spec.name = "cert_chains";
  spec.description =
      "Certificate hierarchies: chain depth/placement x transport (full, "
      "RFC 8879 compressed, Merkle proof) per representative SA";
  static constexpr const char* kSas[] = {"dilithium2", "falcon512",
                                         "sphincs128"};
  struct Mode {
    const char* suffix;
    tls::CertMode mode;
  };
  static constexpr Mode kModes[] = {{"full", tls::CertMode::kFull},
                                    {"comp", tls::CertMode::kCompressed},
                                    {"merkle", tls::CertMode::kMerkle}};
  for (const char* sa : kSas) {
    const std::vector<pki::ChainProfile> profiles = {
        {"int1", "", {sa}},
        {"int2", "", {sa, sa}},
        {"dil-int", "dilithium2", {"dilithium2"}},
    };
    for (const pki::ChainProfile& profile : profiles) {
      for (const Mode& mode : kModes) {
        Cell cell = make_cell("kyber512", sa, 5);
        cell.id += "/chain-" + profile.name + "-" + mode.suffix;
        cell.config.chain_profile = profile;
        cell.config.cert_mode = mode.mode;
        spec.cells.push_back(std::move(cell));
      }
    }
  }
  return spec;
}

CampaignSpec build_all(const std::vector<CampaignSpec>& others) {
  CampaignSpec spec;
  spec.name = "all";
  spec.description =
      "Union of every built-in handshake campaign (deduplicated by id; "
      "loadgen and resumption campaigns emit differently-keyed rows and "
      "stay separate)";
  std::set<std::string> seen;
  for (const auto& other : others) {
    // The resumption campaign's /full cells would duplicate plain cells
    // under a different id (and thus a different derived seed); keep the
    // union limited to the paper's full-handshake campaigns. The hierarchy
    // campaign likewise measures non-paper chain variants.
    if (other.name == "resumption" || other.name == "cert_chains") continue;
    for (const auto& cell : other.cells)
      if (!cell.loadgen && seen.insert(cell.id).second)
        spec.cells.push_back(cell);
  }
  return spec;
}

}  // namespace

const std::vector<CampaignSpec>& campaigns() {
  static const std::vector<CampaignSpec> all = [] {
    std::vector<CampaignSpec> out;
    out.push_back(build_table2a());
    out.push_back(build_table2b());
    out.push_back(build_table3());
    out.push_back(build_table4("table4a",
                               "Table 4a: KAs x network scenarios",
                               table2a_kas(), /*vary_ka=*/true, 9));
    out.push_back(build_table4("table4b",
                               "Table 4b: SAs x network scenarios",
                               table4b_sas(), /*vary_ka=*/false, 7));
    out.push_back(build_fig3());
    out.push_back(build_fig4());
    out.push_back(build_loadgen(
        "loadgen_kems",
        "Loadgen capacity: representative KAs with rsa:2048, 4-core server",
        loadgen_kas(), /*vary_ka=*/true));
    out.push_back(build_loadgen(
        "loadgen_sigs",
        "Loadgen capacity: representative SAs with x25519, 4-core server",
        loadgen_sas(), /*vary_ka=*/false));
    out.push_back(build_loadgen_batch());
    out.push_back(build_fleet());
    out.push_back(build_resumption());
    out.push_back(build_cert_chains());
    out.push_back(build_all(out));
    return out;
  }();
  return all;
}

const CampaignSpec* find_campaign(std::string_view name) {
  for (const auto& spec : campaigns())
    if (spec.name == name) return &spec;
  return nullptr;
}

}  // namespace pqtls::campaign
