#include "perf/cost_model.hpp"

#include <map>
#include <string>

namespace pqtls::perf {

namespace {

// All table entries are microseconds; converted to seconds at the API
// boundary. The relative ordering is the modeled quantity (see header).
struct KemCost {
  double keygen, encaps, decaps;
};
struct SigCost {
  double sign, verify;
};

const std::map<std::string_view, KemCost>& kem_costs() {
  static const std::map<std::string_view, KemCost> table = {
      {"x25519", {60, 60, 60}},
      // Generic short-Weierstrass ECDH (deliberately unoptimized, like the
      // OpenSSL p384/p521 paths the paper shows to be slow).
      {"p256", {250, 500, 250}},
      {"p384", {700, 1400, 700}},
      {"p521", {1500, 3000, 1500}},
      {"kyber512", {25, 35, 45}},
      {"kyber768", {40, 55, 70}},
      {"kyber1024", {60, 80, 100}},
      {"kyber90s512", {30, 40, 50}},
      {"kyber90s768", {45, 60, 80}},
      {"kyber90s1024", {65, 90, 110}},
      {"bikel1", {600, 120, 1800}},
      {"bikel3", {1800, 280, 5200}},
      {"hqc128", {250, 450, 700}},
      {"hqc192", {500, 900, 1400}},
      {"hqc256", {900, 1700, 2600}},
  };
  return table;
}

const std::map<std::string_view, SigCost>& sig_costs() {
  static const std::map<std::string_view, SigCost> table = {
      {"rsa:1024", {400, 25}},
      {"rsa:2048", {1800, 60}},
      {"rsa:3072", {4500, 110}},
      {"rsa:4096", {9000, 170}},
      // ECDSA components of the hybrid SAs.
      {"p256", {280, 550}},
      {"p384", {800, 1500}},
      {"p521", {1700, 3200}},
      {"falcon512", {2600, 140}},
      {"falcon1024", {5200, 280}},
      {"dilithium2", {260, 120}},
      {"dilithium2_aes", {290, 130}},
      {"dilithium3", {420, 190}},
      {"dilithium3_aes", {460, 200}},
      {"dilithium5", {640, 290}},
      {"dilithium5_aes", {700, 310}},
      {"sphincs128", {14000, 900}},
      {"sphincs192", {23000, 1300}},
      {"sphincs256", {30000, 1400}},
      {"sphincs128s", {280000, 350}},
      {"sphincs192s", {500000, 500}},
      {"sphincs256s", {440000, 700}},
  };
  return table;
}

// The hybrid registries spell RSA components without the colon.
std::string_view canonical(std::string_view name) {
  if (name == "rsa1024") return "rsa:1024";
  if (name == "rsa2048") return "rsa:2048";
  if (name == "rsa3072") return "rsa:3072";
  if (name == "rsa4096") return "rsa:4096";
  return name;
}

constexpr double kFallbackUs = 500;  // unknown algorithm: conservative

// Exact-name lookup first (covers "dilithium2_aes", "kyber90s512"), then
// hybrid decomposition at the first underscore ("p256_kyber512" =
// p256 + kyber512). Member selects the operation from the cost struct.
template <typename Table, typename Member>
double resolve_us(const Table& table, std::string_view name, Member member) {
  auto it = table.find(canonical(name));
  if (it != table.end()) return it->second.*member;
  std::size_t split = name.find('_');
  if (split != std::string_view::npos) {
    auto a = table.find(canonical(name.substr(0, split)));
    auto b = table.find(canonical(name.substr(split + 1)));
    if (a != table.end() && b != table.end())
      return a->second.*member + b->second.*member;
  }
  return kFallbackUs;
}

// Fraction of an operation that same-key batching amortizes (public-key
// parsing, A-matrix expansion, H(pk)); calibrated against the batch_*
// micro-benches in bench/micro_algorithms. Hybrids amortize only their
// PQ component, so they get roughly half the pure-PQ fraction; classical
// algorithms and the code-based KEMs (no batched implementation) get 0.
bool is_hybrid_name(std::string_view name) {
  return name.find('_') != std::string_view::npos &&
         name.find("90s") == std::string_view::npos &&
         name.find("_aes") == std::string_view::npos;
}

double kem_encaps_fraction(std::string_view ka) {
  if (ka.find("kyber") == std::string_view::npos) return 0.0;
  return is_hybrid_name(ka) ? 0.18 : 0.35;
}

double kem_decaps_fraction(std::string_view ka) {
  if (ka.find("kyber") == std::string_view::npos) return 0.0;
  return is_hybrid_name(ka) ? 0.15 : 0.30;
}

double verify_fraction(std::string_view sa) {
  if (sa.find("dilithium") == std::string_view::npos) return 0.0;
  return is_hybrid_name(sa) ? 0.20 : 0.45;
}

double amortize(double cost, double fraction, int batch) {
  if (batch <= 1) return cost;  // exact: keeps unbatched profiles identical
  return cost * ((1.0 - fraction) + fraction / static_cast<double>(batch));
}

}  // namespace

const CostModel& CostModel::builtin() {
  static const CostModel model;
  return model;
}

double CostModel::kem_keygen(std::string_view ka) const {
  return resolve_us(kem_costs(), ka, &KemCost::keygen) * 1e-6;
}
double CostModel::kem_encaps(std::string_view ka) const {
  return resolve_us(kem_costs(), ka, &KemCost::encaps) * 1e-6;
}
double CostModel::kem_decaps(std::string_view ka) const {
  return resolve_us(kem_costs(), ka, &KemCost::decaps) * 1e-6;
}
double CostModel::sign(std::string_view sa) const {
  return resolve_us(sig_costs(), sa, &SigCost::sign) * 1e-6;
}
double CostModel::verify(std::string_view sa) const {
  return resolve_us(sig_costs(), sa, &SigCost::verify) * 1e-6;
}

double CostModel::kem_encaps_batched(std::string_view ka, int batch) const {
  return amortize(kem_encaps(ka), kem_encaps_fraction(ka), batch);
}
double CostModel::kem_decaps_batched(std::string_view ka, int batch) const {
  return amortize(kem_decaps(ka), kem_decaps_fraction(ka), batch);
}
double CostModel::verify_batched(std::string_view sa, int batch) const {
  return amortize(verify(sa), verify_fraction(sa), batch);
}

}  // namespace pqtls::perf
