#include "perf/profiler.hpp"

namespace pqtls::perf {

std::string_view lib_name(Lib lib) {
  switch (lib) {
    case Lib::kLibcrypto: return "libcrypto";
    case Lib::kLibssl: return "libssl";
    case Lib::kKernel: return "kernel";
    case Lib::kLibc: return "libc";
    case Lib::kIxgbe: return "ixgbe";
    case Lib::kPython: return "python";
    case Lib::kCount: break;
  }
  return "?";
}

}  // namespace pqtls::perf
