// Deterministic per-operation cost model for the testbed's *modeled* time
// mode. In the paper-fidelity measured mode the virtual clock advances by
// the wall time of the real cryptographic computation; that is faithful but
// inherently noisy (two runs never produce bit-identical latencies, and
// concurrent campaign workers contend for the CPU). Modeled mode instead
// charges each cryptographic operation a fixed first-order cost from the
// tables below, making every experiment bit-reproducible at any worker
// count while preserving the orderings the paper cares about (SPHINCS+
// signing is slow, RSA verification is fast, generic-curve ECDH is slow,
// Kyber is fast, ...). Constants are rough per-operation costs for this
// portable software stack; calibrate against bench/micro_algorithms when
// absolute fidelity matters.
#pragma once

#include <cstddef>
#include <string_view>

namespace pqtls::perf {

class CostModel {
 public:
  /// The built-in table (process-wide, immutable, thread-safe).
  static const CostModel& builtin();

  // Per-operation costs in seconds. Unknown algorithms get a conservative
  // default; hybrid names ("p256_kyber512", "rsa3072_dilithium2") resolve
  // to the sum of their components.
  double kem_keygen(std::string_view ka) const;
  double kem_encaps(std::string_view ka) const;
  double kem_decaps(std::string_view ka) const;
  double sign(std::string_view sa) const;
  double verify(std::string_view sa) const;

  // Amortized per-operation cost when the server runs same-key batches of
  // `batch` operations (kem::Kem::encapsulate_batch and friends): the
  // amortizable fraction of the op — public-key parsing, matrix expansion,
  // key hashing — is divided by the batch size, the rest is charged in
  // full. batch <= 1 returns the unbatched cost exactly (same double), so
  // unbatched profiles stay bit-identical. Algorithms with no batchable
  // setup (classical ECDH/RSA) have fraction 0 and are batch-invariant.
  double kem_encaps_batched(std::string_view ka, int batch) const;
  double kem_decaps_batched(std::string_view ka, int batch) const;
  double verify_batched(std::string_view sa, int batch) const;

  /// Record protection + transcript hashing, charged per processed byte.
  double per_byte(std::size_t n) const { return 30e-9 * static_cast<double>(n); }
  /// One key-schedule derivation (HKDF extract/expand family).
  double kdf() const { return 3e-6; }
  /// Fixed dispatch cost per TLS processing invocation (state machine,
  /// message parsing); the harness adds this once per delivery.
  double step() const { return 20e-6; }
};

}  // namespace pqtls::perf
