// White-box CPU profiler: reproduces the paper's Linux-perf methodology of
// attributing CPU time to shared objects. Each subsystem of this stack is
// tagged with the library it corresponds to in the OQS-OpenSSL build the
// paper measured: cryptographic kernels -> libcrypto, TLS protocol code ->
// libssl, packet processing -> kernel, driver -> ixgbe, testbed harness ->
// python, miscellaneous runtime -> libc.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace pqtls::perf {

enum class Lib : int {
  kLibcrypto = 0,
  kLibssl,
  kKernel,
  kLibc,
  kIxgbe,
  kPython,
  kCount,
};

std::string_view lib_name(Lib lib);

/// Accumulates CPU seconds per library category. One profiler per host.
/// Accumulation is lock-free and thread-safe: the campaign engine runs
/// experiments concurrently, and although each experiment owns its own
/// profilers, nothing breaks if a profiler is ever shared across threads
/// (no lost updates, no cross-run bleed).
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void add(Lib lib, double seconds) {
    totals_[static_cast<int>(lib)].fetch_add(seconds,
                                             std::memory_order_relaxed);
  }
  double total(Lib lib) const {
    return totals_[static_cast<int>(lib)].load(std::memory_order_relaxed);
  }
  double total() const {
    double sum = 0;
    for (const auto& v : totals_) sum += v.load(std::memory_order_relaxed);
    return sum;
  }
  /// Share of category in [0, 1]; 0 when nothing was recorded.
  double share(Lib lib) const {
    double sum = total();
    return sum > 0 ? total(lib) / sum : 0.0;
  }
  void reset() {
    for (auto& v : totals_) v.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<double>, static_cast<int>(Lib::kCount)> totals_{};
};

/// RAII scope that measures wall time of the enclosed work and attributes it
/// to a category. Null profiler => no-op (black-box mode: "ran without
/// interference of other utilities").
class Scope {
 public:
  Scope(Profiler* profiler, Lib lib) : profiler_(profiler), lib_(lib) {
    if (profiler_) start_ = std::chrono::steady_clock::now();
  }
  ~Scope() {
    if (profiler_) {
      auto elapsed = std::chrono::steady_clock::now() - start_;
      profiler_->add(lib_, std::chrono::duration<double>(elapsed).count());
    }
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Profiler* profiler_;
  Lib lib_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pqtls::perf
