// Uniform key-encapsulation interface. TLS 1.3 key agreement maps onto a KEM
// as follows: the client's key_share is a KEM public key (keygen), the
// server's key_share is a ciphertext (encapsulate), and the client recovers
// the shared secret with decapsulate. Classical (EC)DH groups are wrapped in
// the same interface (encapsulation = ephemeral keypair + derive).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/drbg.hpp"

namespace pqtls::kem {

using crypto::Drbg;

struct KeyPair {
  Bytes public_key;
  Bytes secret_key;
};

struct Encapsulation {
  Bytes ciphertext;
  Bytes shared_secret;
};

class Kem {
 public:
  virtual ~Kem() = default;

  /// Registry name as used by the paper, e.g. "kyber512", "p256_kyber512".
  virtual const std::string& name() const = 0;
  /// NIST security level claimed by the parameter set (1, 3, or 5; 0 for
  /// sub-level-1 legacy parameters).
  virtual int security_level() const = 0;
  /// True if this is a hybrid (classical + PQ) construction.
  virtual bool is_hybrid() const { return false; }
  /// True for post-quantum or hybrid algorithms.
  virtual bool is_post_quantum() const = 0;

  virtual std::size_t public_key_size() const = 0;
  virtual std::size_t secret_key_size() const = 0;
  virtual std::size_t ciphertext_size() const = 0;
  virtual std::size_t shared_secret_size() const = 0;

  virtual KeyPair generate_keypair(Drbg& rng) const = 0;
  /// Returns nullopt if the public key is malformed.
  virtual std::optional<Encapsulation> encapsulate(BytesView public_key,
                                                   Drbg& rng) const = 0;
  /// Returns nullopt only on malformed input sizes; CCA-secure KEMs return
  /// an implicit-rejection secret for tampered ciphertexts instead.
  virtual std::optional<Bytes> decapsulate(BytesView secret_key,
                                           BytesView ciphertext) const = 0;

  /// Server-side batched encapsulation against one public key: semantically
  /// `count` sequential encapsulate() calls (same rng consumption, same
  /// outputs bit for bit), but implementations may amortize per-key work
  /// (pk parsing, matrix expansion) across the batch.
  virtual std::vector<std::optional<Encapsulation>> encapsulate_batch(
      BytesView public_key, std::size_t count, Drbg& rng) const {
    std::vector<std::optional<Encapsulation>> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(encapsulate(public_key, rng));
    return out;
  }

  /// Batched decapsulation under one secret key; element i matches
  /// decapsulate(secret_key, ciphertexts[i]) bit for bit.
  virtual std::vector<std::optional<Bytes>> decapsulate_batch(
      BytesView secret_key, const std::vector<BytesView>& ciphertexts) const {
    std::vector<std::optional<Bytes>> out;
    out.reserve(ciphertexts.size());
    for (const auto& ct : ciphertexts)
      out.push_back(decapsulate(secret_key, ct));
    return out;
  }
};

/// All key agreements measured by the paper (Table 2a): 23 configurations.
const std::vector<const Kem*>& all_kems();
/// Look up by paper name; nullptr if unknown.
const Kem* find_kem(const std::string& name);

}  // namespace pqtls::kem
