// Registry of the 23 key-agreement configurations measured by the paper
// (Table 2a): classical, post-quantum, and classical+PQ hybrids per NIST
// security level.
#include "kem/bike.hpp"
#include "kem/ecdh.hpp"
#include "kem/hqc.hpp"
#include "kem/hybrid_kem.hpp"
#include "kem/kem.hpp"
#include "kem/kyber.hpp"

namespace pqtls::kem {

namespace {

std::vector<const Kem*> build_registry() {
  static const HybridKem p256_bikel1(EcdhKem::p256(), BikeKem::bikel1());
  static const HybridKem p256_hqc128(EcdhKem::p256(), HqcKem::hqc128());
  static const HybridKem p256_kyber512(EcdhKem::p256(), KyberKem::kyber512());
  static const HybridKem p384_bikel3(EcdhKem::p384(), BikeKem::bikel3());
  static const HybridKem p384_hqc192(EcdhKem::p384(), HqcKem::hqc192());
  static const HybridKem p384_kyber768(EcdhKem::p384(), KyberKem::kyber768());
  static const HybridKem p521_hqc256(EcdhKem::p521(), HqcKem::hqc256());
  static const HybridKem p521_kyber1024(EcdhKem::p521(),
                                        KyberKem::kyber1024());

  return {
      // Level 1
      &X25519Kem::instance(),
      &BikeKem::bikel1(),
      &HqcKem::hqc128(),
      &KyberKem::kyber512(),
      &KyberKem::kyber90s512(),
      &EcdhKem::p256(),
      &p256_bikel1,
      &p256_hqc128,
      &p256_kyber512,
      // Level 3
      &BikeKem::bikel3(),
      &HqcKem::hqc192(),
      &KyberKem::kyber768(),
      &KyberKem::kyber90s768(),
      &EcdhKem::p384(),
      &p384_bikel3,
      &p384_hqc192,
      &p384_kyber768,
      // Level 5
      &HqcKem::hqc256(),
      &KyberKem::kyber1024(),
      &KyberKem::kyber90s1024(),
      &EcdhKem::p521(),
      &p521_hqc256,
      &p521_kyber1024,
  };
}

}  // namespace

const std::vector<const Kem*>& all_kems() {
  static const std::vector<const Kem*> registry = build_registry();
  return registry;
}

const Kem* find_kem(const std::string& name) {
  for (const Kem* kem : all_kems())
    if (kem->name() == name) return kem;
  return nullptr;
}

}  // namespace pqtls::kem
