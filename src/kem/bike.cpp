#include "kem/bike.hpp"

#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/gf2.hpp"
#include "crypto/keccak.hpp"

namespace pqtls::kem {

namespace {

using crypto::Gf2Ring;

Bytes domain_hash(std::uint8_t domain, BytesView a, BytesView b = {},
                  std::size_t out = 32) {
  crypto::Shake xof(256);
  xof.absorb({&domain, 1});
  xof.absorb(a);
  xof.absorb(b);
  return xof.squeeze(out);
}

// Sample an error pair (e0, e1) of total weight t over 2r positions from a
// 32-byte seed (the deterministic H function of the FO transform).
void sample_error(BytesView seed, std::size_t r, int t, Gf2Ring& e0,
                  Gf2Ring& e1) {
  crypto::Drbg rng(seed);
  e0 = Gf2Ring(r);
  e1 = Gf2Ring(r);
  int placed = 0;
  while (placed < t) {
    std::uint64_t pos = rng.uniform(2 * r);
    Gf2Ring& block = pos < r ? e0 : e1;
    std::size_t idx = pos < r ? pos : pos - r;
    if (block.get(idx)) continue;
    block.set(idx, true);
    ++placed;
  }
}

struct BgfThreshold {
  double slope;
  double intercept;
  int floor_value;  // (d + 1) / 2
};

int threshold(const BgfThreshold& th, std::size_t syndrome_weight) {
  int v = static_cast<int>(th.slope * static_cast<double>(syndrome_weight) +
                           th.intercept);
  return std::max(v, th.floor_value);
}

// Counter: number of unsatisfied parity checks touching position j of block b.
// supp lists the support of the corresponding secret block.
int counter(const Gf2Ring& syndrome, std::size_t r,
            const std::vector<std::uint32_t>& supp, std::size_t j) {
  int c = 0;
  for (std::uint32_t k : supp) {
    std::size_t pos = j + k;
    if (pos >= r) pos -= r;
    c += syndrome.get(pos);
  }
  return c;
}

// Black-Gray-Flip decoder. Returns true and fills (e0, e1) on success.
bool bgf_decode(const Gf2Ring& s0, const Gf2Ring& h0, const Gf2Ring& h1,
                int d, int t, Gf2Ring& e0, Gf2Ring& e1,
                const BgfThreshold& th_params) {
  (void)t;
  constexpr int kNbIter = 5;
  constexpr int kTau = 3;
  std::size_t r = s0.degree_bound();
  auto h0_supp = h0.support();
  auto h1_supp = h1.support();
  e0 = Gf2Ring(r);
  e1 = Gf2Ring(r);

  auto current_syndrome = [&]() {
    // s + e0 h0 + e1 h1 (all in GF(2))
    Gf2Ring s = s0;
    s ^= h0.mul_sparse(e0.support());
    s ^= h1.mul_sparse(e1.support());
    return s;
  };

  for (int iter = 0; iter < kNbIter; ++iter) {
    Gf2Ring s = current_syndrome();
    if (s.is_zero()) return true;
    int th = threshold(th_params, s.weight());

    std::vector<std::uint8_t> black0(r, 0), black1(r, 0), gray0(r, 0),
        gray1(r, 0);
    for (std::size_t j = 0; j < r; ++j) {
      int c0 = counter(s, r, h0_supp, j);
      if (c0 >= th) {
        e0.flip(j);
        black0[j] = 1;
      } else if (c0 >= th - kTau) {
        gray0[j] = 1;
      }
      int c1 = counter(s, r, h1_supp, j);
      if (c1 >= th) {
        e1.flip(j);
        black1[j] = 1;
      } else if (c1 >= th - kTau) {
        gray1[j] = 1;
      }
    }

    if (iter == 0) {
      // Two extra masked half-iterations on the black and gray sets.
      int th2 = (d + 1) / 2;
      for (const auto* mask : {&black0, &gray0}) {
        Gf2Ring s2 = current_syndrome();
        const auto& m0 = *mask;
        const auto& m1 = (mask == &black0) ? black1 : gray1;
        for (std::size_t j = 0; j < r; ++j) {
          if (m0[j] && counter(s2, r, h0_supp, j) >= th2) e0.flip(j);
          if (m1[j] && counter(s2, r, h1_supp, j) >= th2) e1.flip(j);
        }
      }
    }
  }
  return current_syndrome().is_zero();
}

}  // namespace

BikeKem::BikeKem(int level) : level_(level) {
  switch (level) {
    case 1: r_ = 12323; d_ = 71; t_ = 134; break;
    case 3: r_ = 24659; d_ = 103; t_ = 199; break;
    default: throw std::invalid_argument("BIKE level must be 1 or 3");
  }
  name_ = "bikel" + std::to_string(level);
}

std::size_t BikeKem::secret_key_size() const {
  // h0 support + h1 support (4 bytes each) + sigma + public key.
  return 2 * static_cast<std::size_t>(d_) * 4 + 32 + public_key_size();
}

KeyPair BikeKem::generate_keypair(Drbg& rng) const {
  for (;;) {
    Gf2Ring h0 = Gf2Ring::random_weight(r_, d_, rng);
    Gf2Ring h1 = Gf2Ring::random_weight(r_, d_, rng);
    Gf2Ring h0_inv;
    if (!h0.inverse(h0_inv)) continue;
    Gf2Ring h = h0_inv.mul_sparse(h1.support());
    Bytes sigma = rng.bytes(32);

    KeyPair kp;
    kp.public_key = h.to_bytes();
    for (auto s : h0.support()) {
      std::uint8_t be[4];
      store_be32(be, s);
      append(kp.secret_key, {be, 4});
    }
    for (auto s : h1.support()) {
      std::uint8_t be[4];
      store_be32(be, s);
      append(kp.secret_key, {be, 4});
    }
    append(kp.secret_key, sigma);
    append(kp.secret_key, kp.public_key);
    return kp;
  }
}

std::optional<Encapsulation> BikeKem::encapsulate(BytesView public_key,
                                                  Drbg& rng) const {
  if (public_key.size() != public_key_size()) return std::nullopt;
  Gf2Ring h = Gf2Ring::from_bytes(r_, public_key);

  Bytes m = rng.bytes(32);
  Gf2Ring e0, e1;
  sample_error(m, r_, t_, e0, e1);

  Gf2Ring c0 = e0 ^ h.mul_sparse(e1.support());
  Bytes ell = domain_hash(1, e0.to_bytes(), e1.to_bytes());
  Bytes c1(32);
  for (int i = 0; i < 32; ++i) c1[i] = m[i] ^ ell[i];

  Encapsulation out;
  out.ciphertext = concat(c0.to_bytes(), c1);
  out.shared_secret = domain_hash(2, m, out.ciphertext);
  return out;
}

std::optional<Bytes> BikeKem::decapsulate(BytesView secret_key,
                                          BytesView ciphertext) const {
  if (secret_key.size() != secret_key_size() ||
      ciphertext.size() != ciphertext_size())
    return std::nullopt;

  std::vector<std::uint32_t> h0_supp(d_), h1_supp(d_);
  std::size_t off = 0;
  for (int i = 0; i < d_; ++i) {
    h0_supp[i] = load_be32(secret_key.data() + off);
    off += 4;
  }
  for (int i = 0; i < d_; ++i) {
    h1_supp[i] = load_be32(secret_key.data() + off);
    off += 4;
  }
  BytesView sigma = secret_key.subspan(off, 32);
  Gf2Ring h0 = Gf2Ring::from_support(r_, h0_supp);
  Gf2Ring h1 = Gf2Ring::from_support(r_, h1_supp);

  std::size_t c0_len = (r_ + 7) / 8;
  Gf2Ring c0 = Gf2Ring::from_bytes(r_, ciphertext.subspan(0, c0_len));
  BytesView c1 = ciphertext.subspan(c0_len, 32);

  // Syndrome s = c0 * h0 = e0 h0 + e1 h1.
  Gf2Ring s = c0.mul_sparse(h0_supp);

  BgfThreshold th = level_ == 1
                        ? BgfThreshold{0.0069722, 13.530, (d_ + 1) / 2}
                        : BgfThreshold{0.005265, 15.2588, (d_ + 1) / 2};
  // The BGF decoder and the weight/error-vector checks below are
  // variable-time in this reproduction (a known deviation, matching the
  // paper's round-3 BIKE snapshot which only targets CT decoding in later
  // revisions); the annotations document the secret data flow regardless.
  Gf2Ring e0, e1;  // CT_SECRET: e0, e1
  ct::AtExit e_guard([&] {
    e0.wipe();
    e1.wipe();
  });
  bool decoded =
      bgf_decode(s, h0, h1, d_, t_, e0, e1, th) &&
      e0.weight() + e1.weight() ==  // ct-lint: allow(secret-compare) weight check is part of the variable-time decoder
          static_cast<std::size_t>(t_);

  Bytes m(32);  // CT_SECRET
  ct::Wiper m_guard(m);
  if (decoded) {  // ct-lint: allow(secret-branch) decode success steers the FO rejection path; this reproduction's BGF decoder is documented variable-time
    Bytes ell = domain_hash(1, e0.to_bytes(), e1.to_bytes());
    for (int i = 0; i < 32; ++i)
      m[i] = c1[i] ^ ell[i];
    // FO check: re-derive the error vector from m'.
    Gf2Ring e0_check, e1_check;
    sample_error(m, r_, t_, e0_check, e1_check);
    if (e0_check == e0 && e1_check == e1)  // ct-lint: allow(secret-compare) FO recheck, variable-time decoder path
      return domain_hash(2, m, ciphertext);
  }
  // Implicit rejection.
  return domain_hash(2, sigma, ciphertext);
}

const BikeKem& BikeKem::bikel1() {
  static const BikeKem kem(1);
  return kem;
}
const BikeKem& BikeKem::bikel3() {
  static const BikeKem kem(3);
  return kem;
}

}  // namespace pqtls::kem
