// X25519 Diffie-Hellman (RFC 7748) with 51-bit-limb field arithmetic.
// This is the paper's pre-quantum key-agreement baseline ("x25519").
#pragma once

#include <array>

#include "crypto/bytes.hpp"

namespace pqtls::kem {

inline constexpr std::size_t kX25519KeySize = 32;

/// scalar * base point -> public key (RFC 7748 section 5).
std::array<std::uint8_t, 32> x25519_base(const std::uint8_t scalar[32]);

/// scalar * peer_public -> shared secret. Returns false if the result is the
/// all-zero point (contributory behaviour check, RFC 7748 section 6.1).
bool x25519(std::uint8_t out[32], const std::uint8_t scalar[32],
            const std::uint8_t peer_public[32]);

}  // namespace pqtls::kem
