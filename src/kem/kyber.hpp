// CRYSTALS-Kyber (round-3 / ML-KEM lineage) IND-CCA2 KEM for security levels
// 1/3/5 (Kyber-512/768/1024), including the "90s" variants that replace the
// Keccak-based symmetric primitives with AES-256-CTR and SHA-2 — the paper
// measures both families (kyber512 vs kyber90s512, etc.).
#pragma once

#include "kem/kem.hpp"

namespace pqtls::kem {

class KyberKem final : public Kem {
 public:
  /// level in {1, 3, 5} selects Kyber-512/768/1024; use_90s selects the
  /// AES/SHA-2 symmetric backend.
  KyberKem(int level, bool use_90s);

  const std::string& name() const override { return name_; }
  int security_level() const override { return level_; }
  bool is_post_quantum() const override { return true; }

  std::size_t public_key_size() const override;
  std::size_t secret_key_size() const override;
  std::size_t ciphertext_size() const override;
  std::size_t shared_secret_size() const override { return 32; }

  KeyPair generate_keypair(Drbg& rng) const override;
  std::optional<Encapsulation> encapsulate(BytesView public_key,
                                           Drbg& rng) const override;
  std::optional<Bytes> decapsulate(BytesView secret_key,
                                   BytesView ciphertext) const override;

  /// Batched overrides amortize public-key parsing and matrix expansion
  /// across the batch; outputs are bit-identical to sequential calls.
  std::vector<std::optional<Encapsulation>> encapsulate_batch(
      BytesView public_key, std::size_t count, Drbg& rng) const override;
  std::vector<std::optional<Bytes>> decapsulate_batch(
      BytesView secret_key,
      const std::vector<BytesView>& ciphertexts) const override;

  static const KyberKem& kyber512();
  static const KyberKem& kyber768();
  static const KyberKem& kyber1024();
  static const KyberKem& kyber90s512();
  static const KyberKem& kyber90s768();
  static const KyberKem& kyber90s1024();

 private:
  std::string name_;
  int level_;
  int k_;       // module rank: 2 / 3 / 4
  int eta1_;    // noise parameter for secrets
  int du_, dv_; // ciphertext compression bits
  bool use_90s_;
};

}  // namespace pqtls::kem
