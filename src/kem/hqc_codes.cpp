#include "kem/hqc_codes.hpp"

#include <array>
#include <bit>
#include <stdexcept>

#include "crypto/gf2.hpp"

namespace pqtls::kem {

using crypto::Gf256;

ReedSolomon::ReedSolomon(int n, int k) : n_(n), k_(k) {
  if (n <= k || n > 255) throw std::invalid_argument("bad RS parameters");
  // generator(x) = prod_{i=1..n-k} (x - alpha^i)
  generator_ = {1};
  for (int i = 1; i <= n - k; ++i) {
    std::uint8_t root = Gf256::pow_alpha(static_cast<unsigned>(i));
    std::vector<std::uint8_t> next(generator_.size() + 1, 0);
    for (std::size_t j = 0; j < generator_.size(); ++j) {
      next[j] ^= Gf256::mul(generator_[j], root);  // * (-root) == * root in GF(2^m)
      next[j + 1] ^= generator_[j];
    }
    generator_ = std::move(next);
  }
}

std::vector<std::uint8_t> ReedSolomon::encode(
    const std::vector<std::uint8_t>& data) const {
  if (static_cast<int>(data.size()) != k_)
    throw std::invalid_argument("RS encode: wrong data length");
  // Systematic: codeword = data || remainder(data * x^(n-k) / g).
  int parity = n_ - k_;
  std::vector<std::uint8_t> rem(parity, 0);
  for (int i = 0; i < k_; ++i) {
    std::uint8_t feedback = data[i] ^ rem[0];
    for (int j = 0; j < parity - 1; ++j)
      rem[j] = rem[j + 1] ^ Gf256::mul(feedback, generator_[parity - 1 - j]);
    rem[parity - 1] = Gf256::mul(feedback, generator_[0]);
  }
  std::vector<std::uint8_t> out(data);
  out.insert(out.end(), rem.begin(), rem.end());
  return out;
}

bool ReedSolomon::decode(std::vector<std::uint8_t>& cw) const {
  // Codeword polynomial convention: cw[0] is the x^{n-1} coefficient
  // (systematic encode above produces data at the high end).
  int parity = n_ - k_;
  // Syndromes S_i = c(alpha^i), i = 1..parity.
  std::vector<std::uint8_t> syn(parity, 0);
  bool all_zero = true;
  for (int i = 1; i <= parity; ++i) {
    std::uint8_t s = 0;
    for (int j = 0; j < n_; ++j) {
      // c(x) = sum cw[j] x^{n-1-j}
      s = Gf256::mul(s, Gf256::pow_alpha(static_cast<unsigned>(i))) ^ cw[j];
    }
    syn[i - 1] = s;
    if (s) all_zero = false;
  }
  if (all_zero) return true;

  // Berlekamp-Massey for the error locator sigma(x).
  std::vector<std::uint8_t> sigma = {1}, prev = {1};
  int l = 0, m = 1;
  std::uint8_t b = 1;
  for (int i = 0; i < parity; ++i) {
    std::uint8_t delta = syn[i];
    for (int j = 1; j <= l; ++j)
      if (j < static_cast<int>(sigma.size()))
        delta ^= Gf256::mul(sigma[j], syn[i - j]);
    if (delta == 0) {
      ++m;
    } else if (2 * l <= i) {
      std::vector<std::uint8_t> temp = sigma;
      std::uint8_t coef = Gf256::mul(delta, Gf256::inv(b));
      sigma.resize(std::max(sigma.size(), prev.size() + m), 0);
      for (std::size_t j = 0; j < prev.size(); ++j)
        sigma[j + m] ^= Gf256::mul(coef, prev[j]);
      l = i + 1 - l;
      prev = std::move(temp);
      b = delta;
      m = 1;
    } else {
      std::uint8_t coef = Gf256::mul(delta, Gf256::inv(b));
      sigma.resize(std::max(sigma.size(), prev.size() + m), 0);
      for (std::size_t j = 0; j < prev.size(); ++j)
        sigma[j + m] ^= Gf256::mul(coef, prev[j]);
      ++m;
    }
  }
  if (l > correctable()) return false;

  // Chien search: find roots alpha^{-pos} ... positions where sigma(alpha^{-(n-1-j)}) = 0.
  // Error at codeword index j (coefficient of x^{n-1-j}) iff
  // sigma(alpha^{-(n-1-j)}) == 0.
  std::vector<int> error_positions;
  for (int j = 0; j < n_; ++j) {
    unsigned exp = static_cast<unsigned>(n_ - 1 - j);
    std::uint8_t x = Gf256::pow_alpha((255 - exp % 255) % 255);  // alpha^{-exp}
    std::uint8_t val = 0;
    for (std::size_t t = sigma.size(); t-- > 0;)
      val = Gf256::mul(val, x) ^ sigma[t];
    if (val == 0) error_positions.push_back(j);
  }
  if (static_cast<int>(error_positions.size()) != l) return false;

  // Forney: error values. Omega(x) = [S(x) sigma(x)] mod x^parity,
  // S(x) = sum syn[i] x^i.
  std::vector<std::uint8_t> omega(parity, 0);
  for (int i = 0; i < parity; ++i) {
    std::uint8_t acc = 0;
    for (int j = 0; j <= i; ++j)
      if (j < static_cast<int>(sigma.size()))
        acc ^= Gf256::mul(sigma[j], syn[i - j]);
    omega[i] = acc;
  }
  // sigma'(x): formal derivative (odd-degree terms).
  for (int pos : error_positions) {
    unsigned exp = static_cast<unsigned>(n_ - 1 - pos);
    std::uint8_t x_inv = Gf256::pow_alpha((255 - exp % 255) % 255);
    // Omega(x_inv)
    std::uint8_t num = 0;
    for (std::size_t t = omega.size(); t-- > 0;)
      num = Gf256::mul(num, x_inv) ^ omega[t];
    // sigma'(x_inv)
    std::uint8_t den = 0;
    for (std::size_t t = 1; t < sigma.size(); t += 2) {
      // derivative term: t * sigma[t] x^{t-1}; in char 2, odd t -> sigma[t] x^{t-1}
      std::uint8_t term = sigma[t];
      for (std::size_t s = 0; s + 1 < t; ++s) term = Gf256::mul(term, x_inv);
      den ^= term;
    }
    if (den == 0) return false;
    // Forney: with S(x) = sum_{i>=0} S_{i+1} x^i and Omega = S*sigma mod
    // x^{2t}, the magnitude is e_j = Omega(X_j^{-1}) / sigma'(X_j^{-1}).
    std::uint8_t magnitude = Gf256::mul(num, Gf256::inv(den));
    cw[pos] ^= magnitude;
  }

  // Re-check syndromes to confirm successful correction.
  for (int i = 1; i <= parity; ++i) {
    std::uint8_t s = 0;
    for (int j = 0; j < n_; ++j)
      s = Gf256::mul(s, Gf256::pow_alpha(static_cast<unsigned>(i))) ^ cw[j];
    if (s != 0) return false;
  }
  return true;
}

void DuplicatedReedMuller::encode(std::uint8_t symbol,
                                  std::vector<std::uint8_t>& bits) const {
  // RM(1,7): bit j of the 128-bit word = m0 XOR <m1..m7, bits of j>.
  for (int copy = 0; copy < mult_; ++copy) {
    for (int j = 0; j < 128; ++j) {
      int bit = (symbol & 1) ^
                (std::popcount(static_cast<unsigned>((symbol >> 1) & j)) & 1);
      bits.push_back(static_cast<std::uint8_t>(bit));
    }
  }
}

std::uint8_t DuplicatedReedMuller::decode(const std::uint8_t* bits) const {
  // Soft-combine duplications, then fast Hadamard transform.
  std::array<int, 128> v{};
  for (int j = 0; j < 128; ++j) {
    int count = 0;
    for (int copy = 0; copy < mult_; ++copy) count += bits[copy * 128 + j];
    v[j] = mult_ - 2 * count;  // +mult if all zero bits, -mult if all ones
  }
  // FHT: after transform, v_hat[a] = sum_j (-1)^{<a,j>} v[j].
  for (int len = 1; len < 128; len <<= 1) {
    for (int start = 0; start < 128; start += 2 * len) {
      for (int j = start; j < start + len; ++j) {
        int x = v[j], y = v[j + len];
        v[j] = x + y;
        v[j + len] = x - y;
      }
    }
  }
  int best = 0, best_val = v[0], best_sign = 0;
  for (int a = 0; a < 128; ++a) {
    if (v[a] > best_val) {
      best = a; best_val = v[a]; best_sign = 0;
    }
    if (-v[a] > best_val) {
      best = a; best_val = -v[a]; best_sign = 1;
    }
  }
  // codeword for symbol s matches pattern (-1)^{s0 + <s>>1, j>}; correlation
  // with (-1)^{<a,j>} peaks at a = s>>1, sign gives s0.
  return static_cast<std::uint8_t>((best << 1) | best_sign);
}

std::vector<std::uint8_t> HqcCode::encode(BytesView message) const {
  std::vector<std::uint8_t> data(message.begin(), message.end());
  std::vector<std::uint8_t> rs_cw = rs_.encode(data);
  std::vector<std::uint8_t> bits;
  bits.reserve(codeword_bits());
  for (std::uint8_t sym : rs_cw) rm_.encode(sym, bits);
  return bits;
}

bool HqcCode::decode(const std::vector<std::uint8_t>& bits,
                     Bytes& message) const {
  std::vector<std::uint8_t> rs_cw(rs_.n());
  for (int i = 0; i < rs_.n(); ++i)
    rs_cw[i] = rm_.decode(bits.data() +
                          static_cast<std::size_t>(i) * rm_.bits_per_symbol());
  if (!rs_.decode(rs_cw)) return false;
  message.assign(rs_cw.begin(), rs_cw.begin() + rs_.k());
  return true;
}

}  // namespace pqtls::kem
