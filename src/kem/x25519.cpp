#include "kem/x25519.hpp"

#include <cstring>

#include "crypto/bytes.hpp"

namespace pqtls::kem {

namespace {

// Field element mod 2^255 - 19, five 51-bit limbs (curve25519-donna layout).
struct Fe {
  std::uint64_t v[5];
};

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (u64{1} << 51) - 1;

Fe fe_zero() { return {{0, 0, 0, 0, 0}}; }
Fe fe_one() { return {{1, 0, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe out;
  for (int i = 0; i < 5; ++i) out.v[i] = a.v[i] + b.v[i];
  return out;
}

// a - b with bias 2p to stay positive.
Fe fe_sub(const Fe& a, const Fe& b) {
  Fe out;
  out.v[0] = a.v[0] + 0xfffffffffffdaULL - b.v[0];
  out.v[1] = a.v[1] + 0xffffffffffffeULL - b.v[1];
  out.v[2] = a.v[2] + 0xffffffffffffeULL - b.v[2];
  out.v[3] = a.v[3] + 0xffffffffffffeULL - b.v[3];
  out.v[4] = a.v[4] + 0xffffffffffffeULL - b.v[4];
  return out;
}

Fe fe_mul(const Fe& f, const Fe& g) {
  u128 r0 = (u128)f.v[0] * g.v[0] + (u128)(19 * f.v[1]) * g.v[4] +
            (u128)(19 * f.v[2]) * g.v[3] + (u128)(19 * f.v[3]) * g.v[2] +
            (u128)(19 * f.v[4]) * g.v[1];
  u128 r1 = (u128)f.v[0] * g.v[1] + (u128)f.v[1] * g.v[0] +
            (u128)(19 * f.v[2]) * g.v[4] + (u128)(19 * f.v[3]) * g.v[3] +
            (u128)(19 * f.v[4]) * g.v[2];
  u128 r2 = (u128)f.v[0] * g.v[2] + (u128)f.v[1] * g.v[1] +
            (u128)f.v[2] * g.v[0] + (u128)(19 * f.v[3]) * g.v[4] +
            (u128)(19 * f.v[4]) * g.v[3];
  u128 r3 = (u128)f.v[0] * g.v[3] + (u128)f.v[1] * g.v[2] +
            (u128)f.v[2] * g.v[1] + (u128)f.v[3] * g.v[0] +
            (u128)(19 * f.v[4]) * g.v[4];
  u128 r4 = (u128)f.v[0] * g.v[4] + (u128)f.v[1] * g.v[3] +
            (u128)f.v[2] * g.v[2] + (u128)f.v[3] * g.v[1] +
            (u128)f.v[4] * g.v[0];

  Fe out;
  u64 carry;
  out.v[0] = (u64)r0 & kMask51; carry = (u64)(r0 >> 51);
  r1 += carry;
  out.v[1] = (u64)r1 & kMask51; carry = (u64)(r1 >> 51);
  r2 += carry;
  out.v[2] = (u64)r2 & kMask51; carry = (u64)(r2 >> 51);
  r3 += carry;
  out.v[3] = (u64)r3 & kMask51; carry = (u64)(r3 >> 51);
  r4 += carry;
  out.v[4] = (u64)r4 & kMask51; carry = (u64)(r4 >> 51);
  out.v[0] += carry * 19;
  carry = out.v[0] >> 51; out.v[0] &= kMask51;
  out.v[1] += carry;
  return out;
}

Fe fe_sq(const Fe& f) { return fe_mul(f, f); }

Fe fe_mul_small(const Fe& f, u64 s) {
  u128 acc = 0;
  Fe out;
  for (int i = 0; i < 5; ++i) {
    acc += (u128)f.v[i] * s;
    out.v[i] = (u64)acc & kMask51;
    acc >>= 51;
  }
  out.v[0] += (u64)acc * 19;
  return out;
}

// Inversion via Fermat: a^(p-2).
Fe fe_invert(const Fe& z) {
  Fe z2 = fe_sq(z);                     // 2
  Fe z8 = fe_sq(fe_sq(z2));             // 8
  Fe z9 = fe_mul(z8, z);                // 9
  Fe z11 = fe_mul(z9, z2);              // 11
  Fe z22 = fe_sq(z11);                  // 22
  Fe z_5_0 = fe_mul(z22, z9);           // 2^5 - 2^0
  Fe t = z_5_0;
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  Fe z_10_0 = fe_mul(t, z_5_0);
  t = z_10_0;
  for (int i = 0; i < 10; ++i) t = fe_sq(t);
  Fe z_20_0 = fe_mul(t, z_10_0);
  t = z_20_0;
  for (int i = 0; i < 20; ++i) t = fe_sq(t);
  Fe z_40_0 = fe_mul(t, z_20_0);
  t = z_40_0;
  for (int i = 0; i < 10; ++i) t = fe_sq(t);
  Fe z_50_0 = fe_mul(t, z_10_0);
  t = z_50_0;
  for (int i = 0; i < 50; ++i) t = fe_sq(t);
  Fe z_100_0 = fe_mul(t, z_50_0);
  t = z_100_0;
  for (int i = 0; i < 100; ++i) t = fe_sq(t);
  Fe z_200_0 = fe_mul(t, z_100_0);
  t = z_200_0;
  for (int i = 0; i < 50; ++i) t = fe_sq(t);
  Fe z_250_0 = fe_mul(t, z_50_0);
  t = z_250_0;
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  return fe_mul(t, z11);  // 2^255 - 21
}

Fe fe_from_bytes(const std::uint8_t s[32]) {
  Fe out;
  out.v[0] = pqtls::load_le64(s) & kMask51;
  out.v[1] = (pqtls::load_le64(s + 6) >> 3) & kMask51;
  out.v[2] = (pqtls::load_le64(s + 12) >> 6) & kMask51;
  out.v[3] = (pqtls::load_le64(s + 19) >> 1) & kMask51;
  out.v[4] = (pqtls::load_le64(s + 24) >> 12) & kMask51;
  return out;
}

void fe_to_bytes(std::uint8_t out[32], const Fe& f) {
  // Carry chain and final reduction mod p.
  Fe t = f;
  auto carry_pass = [&]() {
    for (int i = 0; i < 4; ++i) {
      t.v[i + 1] += t.v[i] >> 51;
      t.v[i] &= kMask51;
    }
    t.v[0] += 19 * (t.v[4] >> 51);
    t.v[4] &= kMask51;
  };
  carry_pass();
  carry_pass();
  // Now 0 <= t < 2p; subtract p if needed (constant-time-ish select).
  t.v[0] += 19;
  carry_pass();
  // Add 2^255 - 2^255 trick: after adding 19 and reducing, subtract 19 back
  // using the complement.
  t.v[0] += (u64{1} << 51) - 19;
  t.v[1] += (u64{1} << 51) - 1;
  t.v[2] += (u64{1} << 51) - 1;
  t.v[3] += (u64{1} << 51) - 1;
  t.v[4] += (u64{1} << 51) - 1;
  for (int i = 0; i < 4; ++i) {
    t.v[i + 1] += t.v[i] >> 51;
    t.v[i] &= kMask51;
  }
  t.v[4] &= kMask51;

  std::uint8_t* p = out;
  u64 limbs[4];
  limbs[0] = t.v[0] | (t.v[1] << 51);
  limbs[1] = (t.v[1] >> 13) | (t.v[2] << 38);
  limbs[2] = (t.v[2] >> 26) | (t.v[3] << 25);
  limbs[3] = (t.v[3] >> 39) | (t.v[4] << 12);
  for (int i = 0; i < 4; ++i)
    for (int b = 0; b < 8; ++b) p[8 * i + b] = (std::uint8_t)(limbs[i] >> (8 * b));
}

void cswap(Fe& a, Fe& b, u64 swap) {
  u64 mask = ~(swap - 1);  // swap ? all-ones : 0
  for (int i = 0; i < 5; ++i) {
    u64 x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

void ladder(std::uint8_t out[32], const std::uint8_t scalar[32],
            const std::uint8_t point[32]) {
  std::uint8_t e[32];
  std::memcpy(e, scalar, 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  std::uint8_t pt[32];
  std::memcpy(pt, point, 32);
  pt[31] &= 127;  // mask the high bit per RFC 7748

  Fe x1 = fe_from_bytes(pt);
  Fe x2 = fe_one(), z2 = fe_zero();
  Fe x3 = x1, z3 = fe_one();
  u64 swap = 0;

  for (int t = 254; t >= 0; --t) {
    u64 bit = (e[t / 8] >> (t % 8)) & 1;
    swap ^= bit;
    cswap(x2, x3, swap);
    cswap(z2, z3, swap);
    swap = bit;

    Fe a = fe_add(x2, z2);
    Fe aa = fe_sq(a);
    Fe b = fe_sub(x2, z2);
    Fe bb = fe_sq(b);
    Fe e_ = fe_sub(aa, bb);
    Fe c = fe_add(x3, z3);
    Fe d = fe_sub(x3, z3);
    Fe da = fe_mul(d, a);
    Fe cb = fe_mul(c, b);
    Fe t0 = fe_add(da, cb);
    x3 = fe_sq(t0);
    Fe t1 = fe_sub(da, cb);
    z3 = fe_mul(x1, fe_sq(t1));
    x2 = fe_mul(aa, bb);
    Fe t2 = fe_mul_small(e_, 121665);
    z2 = fe_mul(e_, fe_add(aa, t2));
  }
  cswap(x2, x3, swap);
  cswap(z2, z3, swap);

  Fe result = fe_mul(x2, fe_invert(z2));
  fe_to_bytes(out, result);
}

}  // namespace

std::array<std::uint8_t, 32> x25519_base(const std::uint8_t scalar[32]) {
  static constexpr std::uint8_t kBasePoint[32] = {9};
  std::array<std::uint8_t, 32> out{};
  ladder(out.data(), scalar, kBasePoint);
  return out;
}

bool x25519(std::uint8_t out[32], const std::uint8_t scalar[32],
            const std::uint8_t peer_public[32]) {
  ladder(out, scalar, peer_public);
  std::uint8_t zero = 0;
  for (int i = 0; i < 32; ++i) zero |= out[i];
  return zero != 0;
}

}  // namespace pqtls::kem
