// BIKE (Bit-flipping Key Encapsulation), round-4 NIST candidate, levels 1/3
// (bikel1 / bikel3 in the paper; BIKE defines no level-5 parameter set, which
// is why Table 2a has no bikel5 row). QC-MDPC code with the Black-Gray-Flip
// iterative decoder.
#pragma once

#include "kem/kem.hpp"

namespace pqtls::kem {

class BikeKem final : public Kem {
 public:
  explicit BikeKem(int level);

  const std::string& name() const override { return name_; }
  int security_level() const override { return level_; }
  bool is_post_quantum() const override { return true; }

  std::size_t public_key_size() const override { return (r_ + 7) / 8; }
  std::size_t secret_key_size() const override;
  std::size_t ciphertext_size() const override { return (r_ + 7) / 8 + 32; }
  std::size_t shared_secret_size() const override { return 32; }

  KeyPair generate_keypair(Drbg& rng) const override;
  std::optional<Encapsulation> encapsulate(BytesView public_key,
                                           Drbg& rng) const override;
  std::optional<Bytes> decapsulate(BytesView secret_key,
                                   BytesView ciphertext) const override;

  static const BikeKem& bikel1();
  static const BikeKem& bikel3();

 private:
  std::string name_;
  int level_;
  std::size_t r_;  // block size (prime, 2 primitive mod r)
  int d_;          // column weight per block (w/2)
  int t_;          // error weight
};

}  // namespace pqtls::kem
