// Classical Diffie-Hellman key agreements wrapped in the KEM interface:
// X25519 and ECDH over P-256/P-384/P-521 (paper names: x25519, p256, p384,
// p521). Encapsulation generates an ephemeral keypair and derives the shared
// x-coordinate, exactly how TLS 1.3 uses these groups.
#pragma once

#include "crypto/ec.hpp"
#include "kem/kem.hpp"

namespace pqtls::kem {

class X25519Kem final : public Kem {
 public:
  X25519Kem() = default;

  const std::string& name() const override { return name_; }
  int security_level() const override { return 1; }
  bool is_post_quantum() const override { return false; }

  std::size_t public_key_size() const override { return 32; }
  std::size_t secret_key_size() const override { return 32; }
  std::size_t ciphertext_size() const override { return 32; }
  std::size_t shared_secret_size() const override { return 32; }

  KeyPair generate_keypair(Drbg& rng) const override;
  std::optional<Encapsulation> encapsulate(BytesView public_key,
                                           Drbg& rng) const override;
  std::optional<Bytes> decapsulate(BytesView secret_key,
                                   BytesView ciphertext) const override;

  static const X25519Kem& instance();

 private:
  std::string name_ = "x25519";
};

class EcdhKem final : public Kem {
 public:
  explicit EcdhKem(const crypto::EcCurve& curve);

  const std::string& name() const override { return name_; }
  int security_level() const override { return level_; }
  bool is_post_quantum() const override { return false; }

  std::size_t public_key_size() const override;
  std::size_t secret_key_size() const override;
  std::size_t ciphertext_size() const override { return public_key_size(); }
  std::size_t shared_secret_size() const override;

  KeyPair generate_keypair(Drbg& rng) const override;
  std::optional<Encapsulation> encapsulate(BytesView public_key,
                                           Drbg& rng) const override;
  std::optional<Bytes> decapsulate(BytesView secret_key,
                                   BytesView ciphertext) const override;

  static const EcdhKem& p256();
  static const EcdhKem& p384();
  static const EcdhKem& p521();

 private:
  const crypto::EcCurve& curve_;
  std::string name_;
  int level_;
};

}  // namespace pqtls::kem
