// HQC (Hamming Quasi-Cyclic) IND-CCA2 KEM, round-4 NIST candidate, at
// levels 1/3/5 (hqc-128/192/256). Code-based: secrets are fixed-low-weight
// vectors in GF(2)[x]/(x^n - 1); decryption decodes a duplicated-Reed-Muller
// + shortened-Reed-Solomon concatenated code.
#pragma once

#include "kem/kem.hpp"

namespace pqtls::kem {

class HqcKem final : public Kem {
 public:
  explicit HqcKem(int level);

  const std::string& name() const override { return name_; }
  int security_level() const override { return level_; }
  bool is_post_quantum() const override { return true; }

  std::size_t public_key_size() const override;
  std::size_t secret_key_size() const override;
  std::size_t ciphertext_size() const override;
  std::size_t shared_secret_size() const override { return 64; }

  KeyPair generate_keypair(Drbg& rng) const override;
  std::optional<Encapsulation> encapsulate(BytesView public_key,
                                           Drbg& rng) const override;
  std::optional<Bytes> decapsulate(BytesView secret_key,
                                   BytesView ciphertext) const override;

  static const HqcKem& hqc128();
  static const HqcKem& hqc192();
  static const HqcKem& hqc256();

 private:
  std::string name_;
  int level_;
  std::size_t n_;    // ring size (prime)
  int n1_;           // RS length
  int mult_;         // RM duplications (n2 = 128 * mult)
  int k_;            // message bytes
  int w_, wr_, we_;  // key / randomness / error weights
};

}  // namespace pqtls::kem
