#include "kem/hybrid_kem.hpp"

#include <algorithm>

namespace pqtls::kem {

HybridKem::HybridKem(const Kem& classical, const Kem& post_quantum)
    : classical_(classical), pq_(post_quantum) {
  name_ = classical.name() + "_" + pq_.name();
  level_ = std::min(classical.security_level(), pq_.security_level());
}

KeyPair HybridKem::generate_keypair(Drbg& rng) const {
  KeyPair c = classical_.generate_keypair(rng);
  KeyPair p = pq_.generate_keypair(rng);
  return {concat(c.public_key, p.public_key),
          concat(c.secret_key, p.secret_key)};
}

std::optional<Encapsulation> HybridKem::encapsulate(BytesView public_key,
                                                    Drbg& rng) const {
  if (public_key.size() != public_key_size()) return std::nullopt;
  auto c = classical_.encapsulate(public_key.subspan(0, classical_.public_key_size()), rng);
  if (!c) return std::nullopt;
  auto p = pq_.encapsulate(public_key.subspan(classical_.public_key_size()), rng);
  if (!p) return std::nullopt;
  return Encapsulation{concat(c->ciphertext, p->ciphertext),
                       concat(c->shared_secret, p->shared_secret)};
}

std::optional<Bytes> HybridKem::decapsulate(BytesView secret_key,
                                            BytesView ciphertext) const {
  if (secret_key.size() != secret_key_size() ||
      ciphertext.size() != ciphertext_size())
    return std::nullopt;
  auto c = classical_.decapsulate(
      secret_key.subspan(0, classical_.secret_key_size()),
      ciphertext.subspan(0, classical_.ciphertext_size()));
  if (!c) return std::nullopt;
  auto p = pq_.decapsulate(secret_key.subspan(classical_.secret_key_size()),
                           ciphertext.subspan(classical_.ciphertext_size()));
  if (!p) return std::nullopt;
  return concat(*c, *p);
}

}  // namespace pqtls::kem
