#include "kem/kyber.hpp"

#include <array>
#include <stdexcept>

#include "crypto/aes.hpp"
#include "crypto/backend/backend.hpp"
#include "crypto/ct.hpp"
#include "crypto/keccak.hpp"
#include "crypto/sha2.hpp"

namespace pqtls::kem {

namespace {

using crypto::AesCtr;
using crypto::Shake;

constexpr int kN = 256;
constexpr int kQ = 3329;
constexpr int kSymBytes = 32;

using Poly = std::array<std::int16_t, kN>;

// Reduce into [0, q).
std::int16_t freduce(std::int32_t a) {
  a %= kQ;
  if (a < 0) a += kQ;
  return static_cast<std::int16_t>(a);
}

// NTT-domain kernels route through the runtime-selected backend
// (crypto/backend): portable reference or AVX2, bit-identical either way.

void ntt(Poly& r) { crypto::backend::kyber_kernels().ntt(r.data()); }

void invntt(Poly& r) { crypto::backend::kyber_kernels().invntt(r.data()); }

void poly_add(Poly& r, const Poly& a) {
  for (int i = 0; i < kN; ++i) r[i] = freduce(r[i] + a[i]);
}

void poly_sub(Poly& r, const Poly& a) {
  for (int i = 0; i < kN; ++i) r[i] = freduce(r[i] - a[i] + kQ);
}

// Multiplication of NTT-domain polynomials: pairwise products in
// Z_q[X]/(X^2 - zeta).
void basemul_acc(Poly& r, const Poly& a, const Poly& b, bool accumulate) {
  crypto::backend::kyber_kernels().basemul_acc(r.data(), a.data(), b.data(),
                                               accumulate);
}

// ---- symmetric primitives, parameterized over the 90s flag ----

Bytes hash_h(bool use_90s, BytesView in) {
  return use_90s ? crypto::sha256(in) : crypto::sha3_256(in);
}

Bytes hash_g(bool use_90s, BytesView in) {
  return use_90s ? crypto::sha512(in) : crypto::sha3_512(in);
}

Bytes kdf(bool use_90s, BytesView in) {
  return use_90s ? crypto::sha256(in) : crypto::shake256(in, kSymBytes);
}

Bytes prf(bool use_90s, BytesView seed32, std::uint8_t nonce, std::size_t len) {
  if (use_90s) {
    Bytes iv(16, 0);
    iv[0] = nonce;
    AesCtr ctr(seed32, iv);
    Bytes out(len);
    ctr.keystream(out.data(), out.size());
    return out;
  }
  Bytes input(seed32.begin(), seed32.end());
  input.push_back(nonce);
  return crypto::shake256(input, len);
}

// Uniform sampling of an NTT-domain polynomial from the seed (matrix A).
Poly sample_uniform(bool use_90s, BytesView rho, std::uint8_t i, std::uint8_t j) {
  Poly out{};
  int count = 0;
  if (use_90s) {
    Bytes iv(16, 0);
    iv[0] = i;
    iv[1] = j;
    AesCtr ctr(rho, iv);
    std::uint8_t buf[192];
    while (count < kN) {
      ctr.keystream(buf, sizeof buf);
      for (std::size_t b = 0; b + 3 <= sizeof buf && count < kN; b += 3) {
        int d1 = buf[b] | ((buf[b + 1] & 0x0f) << 8);
        int d2 = (buf[b + 1] >> 4) | (buf[b + 2] << 4);
        if (d1 < kQ) out[count++] = static_cast<std::int16_t>(d1);
        if (d2 < kQ && count < kN) out[count++] = static_cast<std::int16_t>(d2);
      }
    }
  } else {
    Shake xof(128);
    Bytes input(rho.begin(), rho.end());
    input.push_back(i);
    input.push_back(j);
    xof.absorb(input);
    std::uint8_t buf[168];
    while (count < kN) {
      xof.squeeze(buf, sizeof buf);
      for (std::size_t b = 0; b + 3 <= sizeof buf && count < kN; b += 3) {
        int d1 = buf[b] | ((buf[b + 1] & 0x0f) << 8);
        int d2 = (buf[b + 1] >> 4) | (buf[b + 2] << 4);
        if (d1 < kQ) out[count++] = static_cast<std::int16_t>(d1);
        if (d2 < kQ && count < kN) out[count++] = static_cast<std::int16_t>(d2);
      }
    }
  }
  return out;
}

// Centered binomial distribution with parameter eta (2 or 3).
Poly cbd(BytesView buf, int eta) {
  Poly r{};
  if (eta == 2) {
    for (int i = 0; i < kN / 8; ++i) {
      std::uint32_t t = load_le32(buf.data() + 4 * i);
      std::uint32_t d = (t & 0x55555555u) + ((t >> 1) & 0x55555555u);
      for (int j = 0; j < 8; ++j) {
        int a = (d >> (4 * j)) & 0x3;
        int b = (d >> (4 * j + 2)) & 0x3;
        r[8 * i + j] = freduce(a - b + kQ);
      }
    }
  } else {  // eta == 3
    for (int i = 0; i < kN / 4; ++i) {
      std::uint32_t t = buf[3 * i] | (std::uint32_t{buf[3 * i + 1]} << 8) |
                        (std::uint32_t{buf[3 * i + 2]} << 16);
      std::uint32_t d = (t & 0x00249249u) + ((t >> 1) & 0x00249249u) +
                        ((t >> 2) & 0x00249249u);
      for (int j = 0; j < 4; ++j) {
        int a = (d >> (6 * j)) & 0x7;
        int b = (d >> (6 * j + 3)) & 0x7;
        r[4 * i + j] = freduce(a - b + kQ);
      }
    }
  }
  return r;
}

// 12-bit packing of an uncompressed polynomial.
void poly_tobytes(Bytes& out, const Poly& a) {
  for (int i = 0; i < kN / 2; ++i) {
    std::uint16_t t0 = static_cast<std::uint16_t>(a[2 * i]);
    std::uint16_t t1 = static_cast<std::uint16_t>(a[2 * i + 1]);
    out.push_back(static_cast<std::uint8_t>(t0));
    out.push_back(static_cast<std::uint8_t>((t0 >> 8) | (t1 << 4)));
    out.push_back(static_cast<std::uint8_t>(t1 >> 4));
  }
}

Poly poly_frombytes(BytesView in) {
  Poly r{};
  for (int i = 0; i < kN / 2; ++i) {
    r[2 * i] = static_cast<std::int16_t>(
        (in[3 * i] | (std::uint16_t{in[3 * i + 1]} << 8)) & 0xfff);
    r[2 * i + 1] = static_cast<std::int16_t>(
        ((in[3 * i + 1] >> 4) | (std::uint16_t{in[3 * i + 2]} << 4)) & 0xfff);
  }
  return r;
}

std::uint16_t compress_coeff(std::int16_t x, int d) {
  // round(2^d / q * x) mod 2^d
  std::uint32_t v = ((static_cast<std::uint32_t>(x) << d) + kQ / 2) / kQ;
  return static_cast<std::uint16_t>(v & ((1u << d) - 1));
}

std::int16_t decompress_coeff(std::uint16_t y, int d) {
  // round(q / 2^d * y)
  return static_cast<std::int16_t>((static_cast<std::uint32_t>(y) * kQ +
                                    (1u << (d - 1))) >> d);
}

// Bit-pack n coefficients of d bits each.
void pack_bits(Bytes& out, const Poly& a, int d) {
  std::uint32_t acc = 0;
  int bits = 0;
  for (int i = 0; i < kN; ++i) {
    acc |= std::uint32_t{compress_coeff(a[i], d)} << bits;
    bits += d;
    while (bits >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      bits -= 8;
    }
  }
}

Poly unpack_bits(BytesView in, int d) {
  Poly r{};
  std::uint32_t acc = 0;
  int bits = 0;
  std::size_t pos = 0;
  for (int i = 0; i < kN; ++i) {
    while (bits < d) {
      acc |= std::uint32_t{in[pos++]} << bits;
      bits += 8;
    }
    std::uint16_t v = acc & ((1u << d) - 1);
    acc >>= d;
    bits -= d;
    r[i] = decompress_coeff(v, d);
  }
  return r;
}

Poly poly_from_msg(BytesView msg32) {
  Poly r{};
  for (int i = 0; i < kSymBytes; ++i)
    for (int j = 0; j < 8; ++j)
      r[8 * i + j] = ((msg32[i] >> j) & 1) ? (kQ + 1) / 2 : 0;
  return r;
}

Bytes poly_to_msg(const Poly& a) {
  Bytes msg(kSymBytes, 0);
  for (int i = 0; i < kN; ++i) {
    std::uint16_t t = compress_coeff(a[i], 1);
    msg[i / 8] |= static_cast<std::uint8_t>(t << (i % 8));
  }
  return msg;
}

struct KpkeParams {
  int k;
  int eta1;
  int du;
  int dv;
  bool use_90s;
};

using PolyVec = std::vector<Poly>;

// IND-CPA public-key encryption (K-PKE).
struct Kpke {
  KpkeParams p;

  std::size_t pk_size() const { return 384 * p.k + kSymBytes; }
  std::size_t sk_size() const { return 384 * p.k; }
  std::size_t ct_size() const { return 32 * (p.du * p.k + p.dv); }

  void keygen(BytesView d32, Bytes& pk, Bytes& sk) const {
    Bytes g = hash_g(p.use_90s, d32);
    BytesView rho{g.data(), 32};
    BytesView sigma{g.data() + 32, 32};

    std::uint8_t nonce = 0;
    PolyVec s(p.k), e(p.k);
    std::size_t cbd_len = p.eta1 * kN / 4;
    for (auto& poly : s) {
      poly = cbd(prf(p.use_90s, sigma, nonce++, cbd_len), p.eta1);
      ntt(poly);
    }
    for (auto& poly : e) {
      poly = cbd(prf(p.use_90s, sigma, nonce++, cbd_len), p.eta1);
      ntt(poly);
    }

    PolyVec t(p.k);
    for (int i = 0; i < p.k; ++i) {
      t[i] = Poly{};
      for (int j = 0; j < p.k; ++j) {
        Poly a = sample_uniform(p.use_90s, rho, static_cast<std::uint8_t>(j),
                                static_cast<std::uint8_t>(i));
        basemul_acc(t[i], a, s[j], /*accumulate=*/true);
      }
      poly_add(t[i], e[i]);
    }

    pk.clear();
    for (const auto& poly : t) poly_tobytes(pk, poly);
    append(pk, rho);
    sk.clear();
    for (const auto& poly : s) poly_tobytes(sk, poly);
  }

  // Per-public-key state reusable across encryptions: the parsed t vector
  // and the expanded A^T matrix (the dominant per-call setup cost). Both
  // are deterministic functions of the public key, so hoisting them out of
  // encrypt() cannot change any output byte.
  struct ExpandedPk {
    PolyVec t;   // k parsed NTT-domain polys
    PolyVec at;  // A^T, row-major: at[i * k + j] = A[i][j] sampled from rho
  };

  ExpandedPk expand_pk(BytesView pk) const {
    ExpandedPk x;
    x.t.resize(p.k);
    for (int i = 0; i < p.k; ++i)
      x.t[i] = poly_frombytes(pk.subspan(384 * i, 384));
    BytesView rho = pk.subspan(384 * p.k, kSymBytes);
    x.at.resize(static_cast<std::size_t>(p.k) * p.k);
    for (int i = 0; i < p.k; ++i)
      for (int j = 0; j < p.k; ++j)
        x.at[static_cast<std::size_t>(i) * p.k + j] = sample_uniform(
            p.use_90s, rho, static_cast<std::uint8_t>(i),
            static_cast<std::uint8_t>(j));
    return x;
  }

  Bytes encrypt_with(const ExpandedPk& x, BytesView msg32,
                     BytesView coins32) const {
    std::uint8_t nonce = 0;
    PolyVec r(p.k);
    std::size_t cbd1_len = p.eta1 * kN / 4;
    for (auto& poly : r) {
      poly = cbd(prf(p.use_90s, coins32, nonce++, cbd1_len), p.eta1);
      ntt(poly);
    }
    PolyVec e1(p.k);
    for (auto& poly : e1)
      poly = cbd(prf(p.use_90s, coins32, nonce++, kN / 2), 2);
    Poly e2 = cbd(prf(p.use_90s, coins32, nonce++, kN / 2), 2);

    // u = invNTT(A^T r) + e1
    PolyVec u(p.k);
    for (int i = 0; i < p.k; ++i) {
      u[i] = Poly{};
      for (int j = 0; j < p.k; ++j)
        basemul_acc(u[i], x.at[static_cast<std::size_t>(i) * p.k + j], r[j],
                    true);
      invntt(u[i]);
      poly_add(u[i], e1[i]);
    }
    // v = invNTT(t . r) + e2 + msg
    Poly v{};
    for (int j = 0; j < p.k; ++j) basemul_acc(v, x.t[j], r[j], true);
    invntt(v);
    poly_add(v, e2);
    Poly m = poly_from_msg(msg32);
    poly_add(v, m);

    Bytes ct;
    ct.reserve(ct_size());
    for (const auto& poly : u) pack_bits(ct, poly, p.du);
    pack_bits(ct, v, p.dv);
    return ct;
  }

  Bytes encrypt(BytesView pk, BytesView msg32, BytesView coins32) const {
    return encrypt_with(expand_pk(pk), msg32, coins32);
  }

  PolyVec parse_sk(BytesView sk) const {
    PolyVec s(p.k);
    for (int i = 0; i < p.k; ++i)
      s[i] = poly_frombytes(sk.subspan(384 * i, 384));
    return s;
  }

  Bytes decrypt_with(const PolyVec& s, BytesView ct) const {
    PolyVec u(p.k);
    std::size_t u_bytes = 32 * p.du;
    for (int i = 0; i < p.k; ++i) {
      u[i] = unpack_bits(ct.subspan(i * u_bytes, u_bytes), p.du);
      ntt(u[i]);
    }
    Poly v = unpack_bits(ct.subspan(p.k * u_bytes, 32 * p.dv), p.dv);

    Poly su{};
    for (int j = 0; j < p.k; ++j) basemul_acc(su, s[j], u[j], true);
    invntt(su);
    poly_sub(v, su);
    return poly_to_msg(v);
  }

  Bytes decrypt(BytesView sk, BytesView ct) const {
    return decrypt_with(parse_sk(sk), ct);
  }
};

}  // namespace

KyberKem::KyberKem(int level, bool use_90s) : level_(level), use_90s_(use_90s) {
  switch (level) {
    case 1: k_ = 2; eta1_ = 3; du_ = 10; dv_ = 4; break;
    case 3: k_ = 3; eta1_ = 2; du_ = 10; dv_ = 4; break;
    case 5: k_ = 4; eta1_ = 2; du_ = 11; dv_ = 5; break;
    default: throw std::invalid_argument("Kyber level must be 1, 3, or 5");
  }
  int bits = k_ == 2 ? 512 : k_ == 3 ? 768 : 1024;
  name_ = (use_90s ? "kyber90s" : "kyber") + std::to_string(bits);
}

std::size_t KyberKem::public_key_size() const { return 384 * k_ + 32; }
std::size_t KyberKem::secret_key_size() const {
  return 384 * k_ + public_key_size() + 2 * kSymBytes;
}
std::size_t KyberKem::ciphertext_size() const {
  return 32 * (du_ * k_ + dv_);
}

KeyPair KyberKem::generate_keypair(Drbg& rng) const {
  Kpke kpke{{k_, eta1_, du_, dv_, use_90s_}};
  Bytes d = rng.bytes(kSymBytes);
  Bytes z = rng.bytes(kSymBytes);
  Bytes pk, sk_pke;
  kpke.keygen(d, pk, sk_pke);
  Bytes h_pk = hash_h(use_90s_, pk);
  KeyPair kp;
  kp.public_key = pk;
  kp.secret_key = concat(sk_pke, pk, h_pk, z);
  return kp;
}

std::optional<Encapsulation> KyberKem::encapsulate(BytesView public_key,
                                                   Drbg& rng) const {
  if (public_key.size() != public_key_size()) return std::nullopt;
  Kpke kpke{{k_, eta1_, du_, dv_, use_90s_}};
  Bytes m = hash_h(use_90s_, rng.bytes(kSymBytes));
  Bytes h_pk = hash_h(use_90s_, public_key);
  Bytes g = hash_g(use_90s_, concat(m, h_pk));
  BytesView k_bar{g.data(), 32};
  BytesView coins{g.data() + 32, 32};
  Encapsulation out;
  out.ciphertext = kpke.encrypt(public_key, m, coins);
  Bytes h_ct = hash_h(use_90s_, out.ciphertext);
  out.shared_secret = kdf(use_90s_, concat(k_bar, h_ct));
  return out;
}

std::optional<Bytes> KyberKem::decapsulate(BytesView secret_key,
                                           BytesView ciphertext) const {
  if (secret_key.size() != secret_key_size() ||
      ciphertext.size() != ciphertext_size())
    return std::nullopt;
  Kpke kpke{{k_, eta1_, du_, dv_, use_90s_}};
  std::size_t sk_pke_len = 384 * k_;
  BytesView sk_pke = secret_key.subspan(0, sk_pke_len);
  BytesView pk = secret_key.subspan(sk_pke_len, public_key_size());
  BytesView h_pk = secret_key.subspan(sk_pke_len + public_key_size(), 32);
  BytesView z = secret_key.subspan(sk_pke_len + public_key_size() + 32, 32);

  Bytes m = kpke.decrypt(sk_pke, ciphertext);  // CT_SECRET
  ct::Wiper m_guard(m);
  Bytes g = hash_g(use_90s_, concat(m, h_pk));  // CT_SECRET
  ct::Wiper g_guard(g);
  BytesView k_bar{g.data(), 32};
  BytesView coins{g.data() + 32, 32};
  Bytes ct2 = kpke.encrypt(pk, m, coins);
  Bytes h_ct = hash_h(use_90s_, ciphertext);
  // Branchless implicit rejection (FO transform): the KDF input is k_bar on
  // a re-encryption match and z otherwise, selected without revealing which.
  bool match = ct::equal(ct2, ciphertext);
  Bytes kdf_in = ct::select(match, k_bar, z);  // CT_SECRET
  ct::Wiper kdf_in_guard(kdf_in);
  return kdf(use_90s_, concat(kdf_in, h_ct));
}

std::vector<std::optional<Encapsulation>> KyberKem::encapsulate_batch(
    BytesView public_key, std::size_t count, Drbg& rng) const {
  std::vector<std::optional<Encapsulation>> out;
  if (public_key.size() != public_key_size()) {
    out.assign(count, std::nullopt);
    return out;
  }
  out.reserve(count);
  Kpke kpke{{k_, eta1_, du_, dv_, use_90s_}};
  // Per-key work hoisted out of the loop; everything below is a pure
  // function of the public key, so outputs match sequential encapsulation.
  const Kpke::ExpandedPk x = kpke.expand_pk(public_key);
  const Bytes h_pk = hash_h(use_90s_, public_key);
  for (std::size_t n = 0; n < count; ++n) {
    Bytes m = hash_h(use_90s_, rng.bytes(kSymBytes));
    Bytes g = hash_g(use_90s_, concat(m, h_pk));
    BytesView k_bar{g.data(), 32};
    BytesView coins{g.data() + 32, 32};
    Encapsulation e;
    e.ciphertext = kpke.encrypt_with(x, m, coins);
    Bytes h_ct = hash_h(use_90s_, e.ciphertext);
    e.shared_secret = kdf(use_90s_, concat(k_bar, h_ct));
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<std::optional<Bytes>> KyberKem::decapsulate_batch(
    BytesView secret_key, const std::vector<BytesView>& ciphertexts) const {
  std::vector<std::optional<Bytes>> out;
  if (secret_key.size() != secret_key_size()) {
    out.assign(ciphertexts.size(), std::nullopt);
    return out;
  }
  out.reserve(ciphertexts.size());
  Kpke kpke{{k_, eta1_, du_, dv_, use_90s_}};
  std::size_t sk_pke_len = 384 * k_;
  BytesView sk_pke = secret_key.subspan(0, sk_pke_len);
  BytesView pk = secret_key.subspan(sk_pke_len, public_key_size());
  BytesView h_pk = secret_key.subspan(sk_pke_len + public_key_size(), 32);
  BytesView z = secret_key.subspan(sk_pke_len + public_key_size() + 32, 32);
  const PolyVec s = kpke.parse_sk(sk_pke);
  const Kpke::ExpandedPk x = kpke.expand_pk(pk);
  for (BytesView ciphertext : ciphertexts) {
    if (ciphertext.size() != ciphertext_size()) {
      out.push_back(std::nullopt);
      continue;
    }
    Bytes m = kpke.decrypt_with(s, ciphertext);  // CT_SECRET
    ct::Wiper m_guard(m);
    Bytes g = hash_g(use_90s_, concat(m, h_pk));  // CT_SECRET
    ct::Wiper g_guard(g);
    BytesView k_bar{g.data(), 32};
    BytesView coins{g.data() + 32, 32};
    Bytes ct2 = kpke.encrypt_with(x, m, coins);
    Bytes h_ct = hash_h(use_90s_, ciphertext);
    // Branchless implicit rejection, exactly as in decapsulate().
    bool match = ct::equal(ct2, ciphertext);
    Bytes kdf_in = ct::select(match, k_bar, z);  // CT_SECRET
    ct::Wiper kdf_in_guard(kdf_in);
    out.push_back(kdf(use_90s_, concat(kdf_in, h_ct)));
  }
  return out;
}

const KyberKem& KyberKem::kyber512() {
  static const KyberKem kem(1, false);
  return kem;
}
const KyberKem& KyberKem::kyber768() {
  static const KyberKem kem(3, false);
  return kem;
}
const KyberKem& KyberKem::kyber1024() {
  static const KyberKem kem(5, false);
  return kem;
}
const KyberKem& KyberKem::kyber90s512() {
  static const KyberKem kem(1, true);
  return kem;
}
const KyberKem& KyberKem::kyber90s768() {
  static const KyberKem kem(3, true);
  return kem;
}
const KyberKem& KyberKem::kyber90s1024() {
  static const KyberKem kem(5, true);
  return kem;
}

}  // namespace pqtls::kem
