#include "kem/ecdh.hpp"

#include "kem/x25519.hpp"

namespace pqtls::kem {

namespace {
using crypto::BigInt;
using crypto::EcCurve;
}  // namespace

KeyPair X25519Kem::generate_keypair(Drbg& rng) const {
  KeyPair kp;
  kp.secret_key = rng.bytes(32);
  auto pub = x25519_base(kp.secret_key.data());
  kp.public_key.assign(pub.begin(), pub.end());
  return kp;
}

std::optional<Encapsulation> X25519Kem::encapsulate(BytesView public_key,
                                                    Drbg& rng) const {
  if (public_key.size() != 32) return std::nullopt;
  Bytes eph = rng.bytes(32);
  auto eph_pub = x25519_base(eph.data());
  Encapsulation out;
  out.shared_secret.resize(32);
  if (!x25519(out.shared_secret.data(), eph.data(), public_key.data()))
    return std::nullopt;
  out.ciphertext.assign(eph_pub.begin(), eph_pub.end());
  return out;
}

std::optional<Bytes> X25519Kem::decapsulate(BytesView secret_key,
                                            BytesView ciphertext) const {
  if (secret_key.size() != 32 || ciphertext.size() != 32) return std::nullopt;
  Bytes out(32);
  if (!x25519(out.data(), secret_key.data(), ciphertext.data()))
    return std::nullopt;
  return out;
}

const X25519Kem& X25519Kem::instance() {
  static const X25519Kem kem;
  return kem;
}

EcdhKem::EcdhKem(const EcCurve& curve) : curve_(curve), name_(curve.name()) {
  level_ = curve.field_size() == 32 ? 1 : curve.field_size() == 48 ? 3 : 5;
}

std::size_t EcdhKem::public_key_size() const {
  return 1 + 2 * curve_.field_size();
}
std::size_t EcdhKem::secret_key_size() const { return curve_.field_size(); }
std::size_t EcdhKem::shared_secret_size() const { return curve_.field_size(); }

KeyPair EcdhKem::generate_keypair(Drbg& rng) const {
  BigInt d = curve_.random_scalar(rng);
  KeyPair kp;
  kp.secret_key = d.to_bytes_be(curve_.field_size());
  kp.public_key = curve_.encode_point(curve_.multiply_base(d));
  return kp;
}

std::optional<Encapsulation> EcdhKem::encapsulate(BytesView public_key,
                                                  Drbg& rng) const {
  auto peer = curve_.decode_point(public_key);
  if (!peer) return std::nullopt;
  BigInt d = curve_.random_scalar(rng);
  EcCurve::Point shared = curve_.multiply(d, *peer);
  if (shared.infinity) return std::nullopt;
  Encapsulation out;
  out.ciphertext = curve_.encode_point(curve_.multiply_base(d));
  out.shared_secret = shared.x.to_bytes_be(curve_.field_size());
  return out;
}

std::optional<Bytes> EcdhKem::decapsulate(BytesView secret_key,
                                          BytesView ciphertext) const {
  if (secret_key.size() != curve_.field_size()) return std::nullopt;
  auto peer = curve_.decode_point(ciphertext);
  if (!peer) return std::nullopt;
  BigInt d = BigInt::from_bytes_be(secret_key);
  EcCurve::Point shared = curve_.multiply(d, *peer);
  if (shared.infinity) return std::nullopt;
  return shared.x.to_bytes_be(curve_.field_size());
}

const EcdhKem& EcdhKem::p256() {
  static const EcdhKem kem(EcCurve::p256());
  return kem;
}
const EcdhKem& EcdhKem::p384() {
  static const EcdhKem kem(EcCurve::p384());
  return kem;
}
const EcdhKem& EcdhKem::p521() {
  static const EcdhKem kem(EcCurve::p521());
  return kem;
}

}  // namespace pqtls::kem
