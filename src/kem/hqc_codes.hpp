// The concatenated error-correcting code used by HQC: a shortened Reed-
// Solomon [n1, k] outer code over GF(256) and a duplicated Reed-Muller
// RM(1,7) = [128, 8, 64] inner code (each bit repeated `mult` times).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bytes.hpp"

namespace pqtls::kem {

/// Shortened Reed-Solomon code over GF(2^8) with poly 0x11d.
class ReedSolomon {
 public:
  /// n symbols total, k data symbols; corrects (n-k)/2 symbol errors.
  ReedSolomon(int n, int k);

  int n() const { return n_; }
  int k() const { return k_; }
  int correctable() const { return (n_ - k_) / 2; }

  /// Systematic encode: returns n symbols (k data then n-k parity).
  std::vector<std::uint8_t> encode(const std::vector<std::uint8_t>& data) const;
  /// Decode in place; returns false if more than (n-k)/2 errors.
  bool decode(std::vector<std::uint8_t>& codeword) const;

 private:
  int n_, k_;
  std::vector<std::uint8_t> generator_;  // generator polynomial coefficients
};

/// Duplicated first-order Reed-Muller RM(1,7): one byte -> 128*mult bits.
class DuplicatedReedMuller {
 public:
  explicit DuplicatedReedMuller(int mult) : mult_(mult) {}

  int bits_per_symbol() const { return 128 * mult_; }

  /// Encode one byte into 128*mult bits appended to `out` (bit index base).
  void encode(std::uint8_t symbol, std::vector<std::uint8_t>& bits) const;
  /// Maximum-likelihood decode of 128*mult bits via fast Hadamard transform.
  std::uint8_t decode(const std::uint8_t* bits) const;

 private:
  int mult_;
};

/// The full HQC concatenated code: k bytes <-> n1 * 128 * mult bits.
class HqcCode {
 public:
  HqcCode(int n1, int k, int mult) : rs_(n1, k), rm_(mult) {}

  int message_bytes() const { return rs_.k(); }
  int codeword_bits() const { return rs_.n() * rm_.bits_per_symbol(); }

  /// message (k bytes) -> codeword bit vector (codeword_bits() entries 0/1).
  std::vector<std::uint8_t> encode(BytesView message) const;
  /// noisy codeword bits -> message; returns false on decoding failure.
  bool decode(const std::vector<std::uint8_t>& bits, Bytes& message) const;

 private:
  ReedSolomon rs_;
  DuplicatedReedMuller rm_;
};

}  // namespace pqtls::kem
