// Hybrid key agreement per draft-ietf-tls-hybrid-design: the classical and
// post-quantum KEMs run independently; key shares and ciphertexts are
// concatenated, and the final shared secret is the concatenation of the two
// individual secrets (both must be broken to recover it).
#pragma once

#include "kem/kem.hpp"

namespace pqtls::kem {

class HybridKem final : public Kem {
 public:
  /// name follows the paper convention: "<classical>_<pq>", e.g.
  /// "p256_kyber512".
  HybridKem(const Kem& classical, const Kem& post_quantum);

  const std::string& name() const override { return name_; }
  int security_level() const override { return level_; }
  bool is_hybrid() const override { return true; }
  bool is_post_quantum() const override { return true; }

  std::size_t public_key_size() const override {
    return classical_.public_key_size() + pq_.public_key_size();
  }
  std::size_t secret_key_size() const override {
    return classical_.secret_key_size() + pq_.secret_key_size();
  }
  std::size_t ciphertext_size() const override {
    return classical_.ciphertext_size() + pq_.ciphertext_size();
  }
  std::size_t shared_secret_size() const override {
    return classical_.shared_secret_size() + pq_.shared_secret_size();
  }

  KeyPair generate_keypair(Drbg& rng) const override;
  std::optional<Encapsulation> encapsulate(BytesView public_key,
                                           Drbg& rng) const override;
  std::optional<Bytes> decapsulate(BytesView secret_key,
                                   BytesView ciphertext) const override;

 private:
  const Kem& classical_;
  const Kem& pq_;
  std::string name_;
  int level_;
};

}  // namespace pqtls::kem
