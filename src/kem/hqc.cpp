#include "kem/hqc.hpp"

#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/gf2.hpp"
#include "crypto/keccak.hpp"
#include "kem/hqc_codes.hpp"

namespace pqtls::kem {

namespace {

using crypto::Gf2Ring;

constexpr std::size_t kSeedBytes = 40;
constexpr std::size_t kSaltBytes = 64;  // the "d" commitment in ciphertexts

Bytes domain_hash(std::uint8_t domain, BytesView a, BytesView b = {},
                  std::size_t out = 64) {
  crypto::Shake xof(256);
  xof.absorb({&domain, 1});
  xof.absorb(a);
  xof.absorb(b);
  return xof.squeeze(out);
}

// Deterministic expansion of a seed into ring elements / sparse vectors.
class SeedExpander {
 public:
  explicit SeedExpander(BytesView seed) : rng_(seed) {}

  Gf2Ring random_dense(std::size_t n) { return Gf2Ring::random(n, rng_); }
  Gf2Ring random_sparse(std::size_t n, std::size_t w) {
    return Gf2Ring::random_weight(n, w, rng_);
  }

 private:
  crypto::Drbg rng_;
};

}  // namespace

HqcKem::HqcKem(int level) : level_(level) {
  switch (level) {
    case 1:
      n_ = 17669; n1_ = 46; mult_ = 3; k_ = 16; w_ = 66; wr_ = 75; we_ = 75;
      break;
    case 3:
      n_ = 35851; n1_ = 56; mult_ = 5; k_ = 24; w_ = 100; wr_ = 114; we_ = 114;
      break;
    case 5:
      n_ = 57637; n1_ = 90; mult_ = 5; k_ = 32; w_ = 131; wr_ = 149; we_ = 149;
      break;
    default:
      throw std::invalid_argument("HQC level must be 1, 3, or 5");
  }
  name_ = "hqc" + std::to_string(level == 1 ? 128 : level == 3 ? 192 : 256);
}

std::size_t HqcKem::public_key_size() const {
  return kSeedBytes + (n_ + 7) / 8;
}

std::size_t HqcKem::secret_key_size() const {
  return kSeedBytes + public_key_size();
}

std::size_t HqcKem::ciphertext_size() const {
  std::size_t v_bits = static_cast<std::size_t>(n1_) * 128 * mult_;
  return (n_ + 7) / 8 + (v_bits + 7) / 8 + kSaltBytes;
}

KeyPair HqcKem::generate_keypair(Drbg& rng) const {
  Bytes pk_seed = rng.bytes(kSeedBytes);
  Bytes sk_seed = rng.bytes(kSeedBytes);

  SeedExpander pk_exp(pk_seed);
  Gf2Ring h = pk_exp.random_dense(n_);
  SeedExpander sk_exp(sk_seed);
  Gf2Ring x = sk_exp.random_sparse(n_, w_);
  Gf2Ring y = sk_exp.random_sparse(n_, w_);

  Gf2Ring s = x ^ h.mul_sparse(y.support());

  KeyPair kp;
  kp.public_key = concat(pk_seed, s.to_bytes());
  kp.secret_key = concat(sk_seed, kp.public_key);
  return kp;
}

std::optional<Encapsulation> HqcKem::encapsulate(BytesView public_key,
                                                 Drbg& rng) const {
  if (public_key.size() != public_key_size()) return std::nullopt;
  BytesView pk_seed = public_key.subspan(0, kSeedBytes);
  BytesView s_bytes = public_key.subspan(kSeedBytes);

  Bytes m = rng.bytes(k_);
  Bytes theta = domain_hash(3, m, public_key);  // encryption randomness seed

  // Deterministic encryption of m under randomness theta.
  SeedExpander pk_exp(pk_seed);
  Gf2Ring h = pk_exp.random_dense(n_);
  Gf2Ring s = Gf2Ring::from_bytes(n_, s_bytes);
  SeedExpander enc_exp(theta);
  Gf2Ring r1 = enc_exp.random_sparse(n_, wr_);
  Gf2Ring r2 = enc_exp.random_sparse(n_, wr_);
  Gf2Ring e = enc_exp.random_sparse(n_, we_);

  Gf2Ring u = r1 ^ h.mul_sparse(r2.support());
  Gf2Ring noisy = s.mul_sparse(r2.support()) ^ e;

  HqcCode code(n1_, k_, mult_);
  std::vector<std::uint8_t> cw = code.encode(m);
  std::size_t v_bits = cw.size();
  Gf2Ring v(n_);
  for (std::size_t i = 0; i < v_bits; ++i)
    if (cw[i] ^ noisy.get(i)) v.set(i, true);
  // Truncate v to the codeword length.
  Bytes v_bytes = v.to_bytes();
  v_bytes.resize((v_bits + 7) / 8);

  Bytes d = domain_hash(4, m, {}, kSaltBytes);

  Encapsulation out;
  out.ciphertext = concat(u.to_bytes(), v_bytes, d);
  out.shared_secret = domain_hash(5, m, out.ciphertext);
  return out;
}

std::optional<Bytes> HqcKem::decapsulate(BytesView secret_key,
                                         BytesView ciphertext) const {
  if (secret_key.size() != secret_key_size() ||
      ciphertext.size() != ciphertext_size())
    return std::nullopt;
  BytesView sk_seed = secret_key.subspan(0, kSeedBytes);
  BytesView public_key = secret_key.subspan(kSeedBytes);

  std::size_t u_len = (n_ + 7) / 8;
  std::size_t v_bits = static_cast<std::size_t>(n1_) * 128 * mult_;
  std::size_t v_len = (v_bits + 7) / 8;
  BytesView u_bytes = ciphertext.subspan(0, u_len);
  BytesView v_bytes = ciphertext.subspan(u_len, v_len);
  BytesView d = ciphertext.subspan(u_len + v_len, kSaltBytes);

  SeedExpander sk_exp(sk_seed);
  (void)sk_exp.random_sparse(n_, w_);  // x (unused in decryption)
  Gf2Ring y = sk_exp.random_sparse(n_, w_);

  Gf2Ring u = Gf2Ring::from_bytes(n_, u_bytes);
  Gf2Ring v = Gf2Ring::from_bytes(n_, v_bytes);  // zero-padded beyond v_bits
  Gf2Ring noisy = v ^ u.mul_sparse(y.support());

  std::vector<std::uint8_t> bits(v_bits);
  for (std::size_t i = 0; i < v_bits; ++i) bits[i] = noisy.get(i);

  HqcCode code(n1_, k_, mult_);
  Bytes m;  // CT_SECRET
  ct::Wiper m_guard(m);
  bool decode_ok = code.decode(bits, m);
  // Decode failure maps to explicit rejection in this reproduction's API;
  // the event itself is observable from the returned nullopt, so the branch
  // leaks nothing beyond the result.
  if (!decode_ok) return std::nullopt;  // ct-lint: allow(secret-branch) rejection is observable from the returned nullopt anyway

  // Re-encrypt check (FO transform).
  Bytes theta = domain_hash(3, m, public_key);  // CT_SECRET
  ct::Wiper theta_guard(theta);
  BytesView pk_seed = public_key.subspan(0, kSeedBytes);
  BytesView s_bytes = public_key.subspan(kSeedBytes);
  SeedExpander pk_exp(pk_seed);
  Gf2Ring h = pk_exp.random_dense(n_);
  Gf2Ring s = Gf2Ring::from_bytes(n_, s_bytes);
  SeedExpander enc_exp(theta);
  Gf2Ring r1 = enc_exp.random_sparse(n_, wr_);
  Gf2Ring r2 = enc_exp.random_sparse(n_, wr_);
  Gf2Ring e = enc_exp.random_sparse(n_, we_);
  Gf2Ring u2 = r1 ^ h.mul_sparse(r2.support());
  Gf2Ring noisy2 = s.mul_sparse(r2.support()) ^ e;
  std::vector<std::uint8_t> cw = code.encode(m);
  Gf2Ring v2(n_);
  // Unconditional set: cw and noisy2 are re-derived from the secret m, so
  // the bit write must not branch on them (caught by ct_lint's taint pass).
  for (std::size_t i = 0; i < v_bits; ++i)
    v2.set(i, static_cast<bool>(cw[i] ^ noisy2.get(i)));
  Bytes v2_bytes = v2.to_bytes();
  v2_bytes.resize(v_len);
  Bytes d2 = domain_hash(4, m, {}, kSaltBytes);

  Bytes u2_bytes = u2.to_bytes();
  if (!ct::equal(u2_bytes, u_bytes) || !ct::equal(v2_bytes, v_bytes) ||
      !ct::equal(d2, d))
    return std::nullopt;

  return domain_hash(5, m, ciphertext);
}

const HqcKem& HqcKem::hqc128() {
  static const HqcKem kem(1);
  return kem;
}
const HqcKem& HqcKem::hqc192() {
  static const HqcKem kem(3);
  return kem;
}
const HqcKem& HqcKem::hqc256() {
  static const HqcKem kem(5);
  return kem;
}

}  // namespace pqtls::kem
