// Per-role structural checks over a StateMachineSpec: determinism,
// completeness, reachability. See verify.hpp for the property definitions.
#include <algorithm>
#include <deque>
#include <set>
#include <string>

#include "verify/verify.hpp"

namespace pqtls::verify {

namespace {

using tls::SpecOutcome;
using tls::SpecTransition;
using tls::StateMachineSpec;

bool known_state(const StateMachineSpec& spec, const std::string& name) {
  return std::find(spec.states.begin(), spec.states.end(), name) !=
         spec.states.end();
}

PropertyResult check_determinism(const StateMachineSpec& spec) {
  PropertyResult result;
  result.name = spec.role + ".determinism";
  std::set<std::pair<std::string, std::uint8_t>> seen;
  for (const SpecTransition& t : spec.transitions) {
    if (!seen.insert({t.from, t.message}).second)
      result.violations.push_back("duplicate/shadowed rule: state '" + t.from +
                                  "' has more than one rule for " +
                                  t.message_name);
    if (!known_state(spec, t.from))
      result.violations.push_back("rule out of unknown state '" + t.from +
                                  "'");
    if (spec.is_terminal(t.from))
      result.violations.push_back("rule out of terminal state '" + t.from +
                                  "' can never fire");
    std::set<std::string> labels;
    for (const SpecOutcome& o : t.outcomes) {
      if (!labels.insert(o.label).second)
        result.violations.push_back("rule (" + t.from + ", " +
                                    t.message_name +
                                    ") declares duplicate outcome '" +
                                    o.label + "'");
      if (!known_state(spec, o.next))
        result.violations.push_back("rule (" + t.from + ", " +
                                    t.message_name + ") outcome '" + o.label +
                                    "' targets unknown state '" + o.next +
                                    "'");
    }
    if (t.outcomes.empty())
      result.violations.push_back("rule (" + t.from + ", " + t.message_name +
                                  ") declares no outcomes");
  }
  result.passed = result.violations.empty();
  return result;
}

PropertyResult check_completeness(const StateMachineSpec& spec) {
  PropertyResult result;
  result.name = spec.role + ".completeness";
  std::size_t matched = 0, alert_rejected = 0, silent_documented = 0;
  for (const std::string& state : spec.states) {
    if (spec.is_terminal(state)) continue;  // terminal: input is ignored
    bool has_rule = false;
    for (std::uint8_t m : spec.alphabet) {
      std::size_t rules = 0;
      for (const SpecTransition& t : spec.transitions)
        if (t.from == state && t.message == m) ++rules;
      if (rules == 1) {
        ++matched;
        has_rule = true;
        continue;
      }
      if (rules > 1) continue;  // determinism reports the duplicate
      // Unmatched pair: must be *provably* rejected. Alert states answer
      // with unexpected_message; the initial state's silent drop is the
      // documented pre-handshake-garbage policy. Anything else fell
      // through the table silently — the gap class this checker exists
      // to catch.
      if (spec.alerts_in(state)) {
        ++alert_rejected;
      } else if (state == spec.initial) {
        ++silent_documented;
      } else {
        result.violations.push_back(
            "silent fall-through: state '" + state + "' receiving " +
            tls::handshake_type_name(m) +
            " matches no rule and carries no alert-or-documented-drop "
            "policy");
      }
    }
    bool has_start = false;
    for (const tls::SpecStart& s : spec.starts)
      has_start = has_start || s.from == state;
    if (!has_rule && !has_start)
      result.violations.push_back("dead-end state '" + state +
                                  "': non-terminal but has neither rules "
                                  "nor a start action");
  }
  result.notes.push_back("pairs matched by a rule: " +
                         std::to_string(matched));
  result.notes.push_back("pairs rejected with unexpected_message alert: " +
                         std::to_string(alert_rejected));
  result.notes.push_back("pairs dropped silently by documented policy: " +
                         std::to_string(silent_documented));
  result.passed = result.violations.empty();
  return result;
}

PropertyResult check_reachability(const StateMachineSpec& spec) {
  PropertyResult result;
  result.name = spec.role + ".reachability";
  std::set<std::string> reachable{spec.initial};
  std::deque<std::string> frontier{spec.initial};
  auto visit = [&](const std::string& state) {
    if (reachable.insert(state).second) frontier.push_back(state);
  };
  while (!frontier.empty()) {
    std::string state = frontier.front();
    frontier.pop_front();
    for (const tls::SpecStart& s : spec.starts)
      if (s.from == state) visit(s.next);
    for (const SpecTransition& t : spec.transitions) {
      if (t.from != state) continue;
      for (const SpecOutcome& o : t.outcomes) visit(o.next);
    }
  }
  for (const std::string& state : spec.states)
    if (!reachable.count(state))
      result.violations.push_back("dead state '" + state +
                                  "': unreachable from '" + spec.initial +
                                  "'");
  for (const SpecTransition& t : spec.transitions)
    if (!reachable.count(t.from))
      result.violations.push_back("unreachable rule (" + t.from + ", " +
                                  t.message_name + ")");
  result.notes.push_back("reachable states: " +
                         std::to_string(reachable.size()) + "/" +
                         std::to_string(spec.states.size()));
  result.passed = result.violations.empty();
  return result;
}

}  // namespace

std::vector<PropertyResult> check_machine(const StateMachineSpec& spec) {
  return {check_determinism(spec), check_completeness(spec),
          check_reachability(spec)};
}

}  // namespace pqtls::verify
