// Static protocol verifier over the exported handshake state-machine specs
// (tls/spec.hpp). Two layers:
//
//   Per-role checks (check_machine): the rule table itself, as data —
//     determinism    no duplicate or shadowed (state, message) rules, no
//                    rules out of terminal states, no edges into unknown
//                    states, unique outcome labels per rule;
//     completeness   every (non-terminal state, alphabet message) pair is
//                    either matched by exactly one rule or *provably
//                    rejected*: an unexpected_message alert in states the
//                    role's alert policy covers, or the documented silent
//                    drop in the role's initial state. Any other silent
//                    fall-through, and any non-terminal dead-end state with
//                    neither rules nor a start action, is a violation;
//     reachability   breadth-first over the declared success edges: every
//                    state and every rule must be reachable from the
//                    initial state.
//
//   Product automaton (check_product): exhaustive exploration of the joint
//   client × server machine over the in-flight message queues, branching
//   every dispatch across its declared outcomes (ok / HRR — guarded to
//   fire once per side, like hrr_seen_/hrr_sent_ — / codec reject) plus
//   fatal-alert delivery and the ignore-when-terminal rule. Proves
//     termination        the reachable joint graph is acyclic;
//     deadlock-freedom   every quiescent joint state is either joint
//                        success (both complete, queues drained) or an
//                        explicit error (at least one side failed);
//     reaches-done       the joint success state is actually reachable;
//     emission-coverage  the rule tables mirror each other: every message
//                        a side can emit has a peer rule (no orphan
//                        emissions absorbed by the alert policy), and
//                        every message a side has a rule for is peer-
//                        emittable (no dead rules).
//   Together: every reachable joint state either advances toward Done or
//   terminates in an explicit error. The graph is exported as DOT and
//   JSON artifacts (render_dot / render_graph_json).
//
// run_all bundles both layers into a machine-readable report
// (render_report_json, golden-locked in tests/golden/verify_report.json).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tls/spec.hpp"

namespace pqtls::verify {

struct PropertyResult {
  std::string name;  // e.g. "client.completeness"
  bool passed = true;
  std::vector<std::string> violations;  // empty iff passed
  std::vector<std::string> notes;       // facts worth reporting either way
};

/// Per-role structural checks: determinism, completeness, reachability.
std::vector<PropertyResult> check_machine(const tls::StateMachineSpec& spec);

/// In the joint graph, message queues carry handshake type codes plus this
/// marker for a fatal alert record in flight.
constexpr std::uint8_t kAlertMarker = 0xFF;

/// One in-flight message: handshake type code (or kAlertMarker) plus the
/// content flavor its emitting outcome declared ("plain" | "hrr").
using FlightMsg = std::pair<std::uint8_t, std::string>;

/// Printable name of an in-flight message ("server_hello(hrr)", "alert").
std::string flight_name(const FlightMsg& msg);

struct JointState {
  std::string client;
  std::string server;
  std::vector<FlightMsg> c2s;  // client-to-server in-flight messages
  std::vector<FlightMsg> s2c;
  bool client_started = false;
  bool client_hrr_used = false;
  bool server_hrr_used = false;
};

struct JointEdge {
  int from = 0;
  int to = 0;
  std::string label;  // e.g. "s:client_hello/ok", "c:alert"
};

struct JointGraph {
  std::vector<JointState> states;  // discovery (BFS) order; 0 is initial
  std::vector<JointEdge> edges;
  std::vector<int> done_states;   // both complete, queues drained
  std::vector<int> error_states;  // quiescent with at least one side failed
  std::vector<int> stuck_states;  // quiescent but neither done nor error
};

struct ProductResult {
  JointGraph graph;
  std::vector<PropertyResult> properties;
};

ProductResult check_product(const tls::StateMachineSpec& client,
                            const tls::StateMachineSpec& server);

/// Graphviz DOT of the joint graph (deterministic node order and labels).
std::string render_dot(const JointGraph& graph);
/// JSON {"states": [...], "edges": [...]} of the joint graph.
std::string render_graph_json(const JointGraph& graph);

struct Report {
  std::vector<PropertyResult> properties;
  std::size_t client_states = 0;
  std::size_t client_rules = 0;
  std::size_t server_states = 0;
  std::size_t server_rules = 0;
  std::size_t joint_states = 0;
  std::size_t joint_edges = 0;
  std::size_t joint_done = 0;
  std::size_t joint_error = 0;
};

/// Run every check on the pair of specs; optionally hand back the joint
/// graph for artifact export.
Report run_all(const tls::StateMachineSpec& client,
               const tls::StateMachineSpec& server,
               JointGraph* graph_out = nullptr);

bool all_passed(const Report& report);

/// Machine-readable report, stable key order and formatting (golden-locked).
std::string render_report_json(const Report& report);

}  // namespace pqtls::verify
