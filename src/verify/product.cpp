// Client × server product automaton: exhaustive exploration of the joint
// handshake over the in-flight message queues, branching every dispatch
// across its declared outcomes. See verify.hpp for the property catalog.
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "verify/verify.hpp"

namespace pqtls::verify {

namespace {

using tls::SpecOutcome;
using tls::SpecTransition;
using tls::StateMachineSpec;

/// Canonical ordering key so the BFS discovers states deterministically
/// and revisits are detected. By value: the key outlives the state vector's
/// reallocations.
auto key(const JointState& s) {
  return std::make_tuple(s.client, s.server, s.c2s, s.s2c, s.client_started,
                         s.client_hrr_used, s.server_hrr_used);
}

struct Explorer {
  const StateMachineSpec& client;
  const StateMachineSpec& server;
  JointGraph graph;
  std::map<decltype(key(JointState{})), int> index;

  int intern(const JointState& s) {
    auto it = index.find(key(s));
    if (it != index.end()) return it->second;
    int id = static_cast<int>(graph.states.size());
    graph.states.push_back(s);
    index.emplace(key(s), id);
    return id;
  }

  const SpecTransition* find_rule(const StateMachineSpec& spec,
                                  const std::string& state,
                                  std::uint8_t message) {
    for (const SpecTransition& t : spec.transitions)
      if (t.from == state && t.message == message) return &t;
    return nullptr;
  }

  /// Successors of delivering the head of one queue to one endpoint.
  /// `to_server` selects the consuming side.
  void deliver(const JointState& from, int from_id, bool to_server) {
    const StateMachineSpec& spec = to_server ? server : client;
    const std::string& endpoint = to_server ? from.server : from.client;
    const std::vector<FlightMsg>& queue = to_server ? from.c2s : from.s2c;
    const FlightMsg message = queue.front();
    const std::string side = to_server ? "s" : "c";

    auto base = [&]() {
      JointState next = from;
      (to_server ? next.c2s : next.s2c)
          .erase((to_server ? next.c2s : next.s2c).begin());
      return next;
    };
    auto set_state = [&](JointState& js, const std::string& state) {
      (to_server ? js.server : js.client) = state;
    };
    auto emit = [&](JointState& js, const FlightMsg& m) {
      (to_server ? js.s2c : js.c2s).push_back(m);
    };
    auto add_edge = [&](const JointState& next, const std::string& label) {
      graph.edges.push_back({from_id, intern(next), side + ":" + label});
    };

    const std::string msg_name = flight_name(message);

    // A terminal endpoint ignores everything (the completed server's
    // replayed-Finished behaviour; a failed endpoint reads no more).
    if (spec.is_terminal(endpoint)) {
      add_edge(base(), msg_name + "/ignored");
      return;
    }
    // A fatal alert fails the receiver outright (the record layer rejects
    // the alert content type mid-handshake).
    if (message.first == kAlertMarker) {
      JointState next = base();
      set_state(next, spec.error);
      add_edge(next, "alert");
      return;
    }
    const SpecTransition* rule = find_rule(spec, endpoint, message.first);
    if (!rule) {
      // Unexpected message: per-state policy — alert or silent drop.
      JointState next = base();
      set_state(next, spec.error);
      if (spec.alerts_in(endpoint)) emit(next, {kAlertMarker, "plain"});
      add_edge(next, msg_name + "/unexpected");
      return;
    }
    bool any_outcome = false;
    for (const SpecOutcome& outcome : rule->outcomes) {
      bool used = to_server ? from.server_hrr_used : from.client_hrr_used;
      if (outcome.once && used) continue;       // HRR guard spent
      if (!outcome.enabled_for(message.second)) continue;  // wrong flavor
      any_outcome = true;
      JointState next = base();
      set_state(next, outcome.next);
      if (outcome.once)
        (to_server ? next.server_hrr_used : next.client_hrr_used) = true;
      for (const tls::SpecEmit& m : outcome.emits)
        emit(next, {m.message, m.flavor});
      if (outcome.alert) emit(next, {kAlertMarker, "plain"});
      add_edge(next, msg_name + "/" + outcome.label);
    }
    if (!any_outcome) {
      // Every declared outcome is guarded off (e.g. a second HRR with the
      // retry budget spent): the implementation fail_alerts.
      JointState next = base();
      set_state(next, spec.error);
      emit(next, {kAlertMarker, "plain"});
      add_edge(next, msg_name + "/exhausted");
    }
  }

  void explore() {
    JointState initial;
    initial.client = client.initial;
    initial.server = server.initial;
    intern(initial);
    // BFS over ids; edges out of each state are generated in a fixed order
    // (client start, deliver-to-server, deliver-to-client; outcomes in
    // declared order), so the graph — and the DOT/JSON artifacts — are
    // byte-deterministic.
    std::size_t next_unprocessed = 0;
    while (next_unprocessed < graph.states.size()) {
      int id = static_cast<int>(next_unprocessed++);
      JointState from = graph.states[id];  // copy: states may reallocate
      bool quiescent = true;
      if (!from.client_started) {
        // Branch one start edge per declared variant (full handshake,
        // resumption, resumption + 0-RTT) out of the client's initial
        // state; each seeds a differently flavored first flight.
        for (const tls::SpecStart& start : client.starts) {
          if (from.client != start.from) continue;
          JointState next = from;
          next.client = start.next;
          next.client_started = true;
          for (const tls::SpecEmit& m : start.emits)
            next.c2s.push_back({m.message, m.flavor});
          graph.edges.push_back({id, intern(next), "c:start/" + start.label});
          quiescent = false;
        }
      }
      if (!from.c2s.empty()) {
        deliver(from, id, /*to_server=*/true);
        quiescent = false;
      }
      if (!from.s2c.empty()) {
        deliver(from, id, /*to_server=*/false);
        quiescent = false;
      }
      if (quiescent) {
        bool done = from.client == client.done && from.server == server.done;
        bool error =
            from.client == client.error || from.server == server.error;
        if (done)
          graph.done_states.push_back(id);
        else if (error)
          graph.error_states.push_back(id);
        else
          graph.stuck_states.push_back(id);
      }
    }
  }
};

/// True if the edge relation restricted to reachable states has a cycle.
bool has_cycle(const JointGraph& graph) {
  std::vector<std::vector<int>> out(graph.states.size());
  for (const JointEdge& e : graph.edges) out[e.from].push_back(e.to);
  enum Color { kWhite, kGray, kBlack };
  std::vector<Color> color(graph.states.size(), kWhite);
  // Iterative DFS with an explicit stack of (node, next-child-index).
  for (std::size_t root = 0; root < graph.states.size(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<int, std::size_t>> stack{{static_cast<int>(root), 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      if (child < out[node].size()) {
        int next = out[node][child++];
        if (color[next] == kGray) return true;
        if (color[next] == kWhite) {
          color[next] = kGray;
          stack.push_back({next, 0});
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

/// Every handshake-type code a role can ever put on the wire: its start
/// flights plus every declared outcome emission. The alert marker is
/// policy, not a handshake message, and is excluded.
std::set<std::uint8_t> emittable_messages(const StateMachineSpec& spec) {
  std::set<std::uint8_t> out;
  for (const tls::SpecStart& start : spec.starts)
    for (const tls::SpecEmit& m : start.emits) out.insert(m.message);
  for (const SpecTransition& t : spec.transitions)
    for (const SpecOutcome& o : t.outcomes)
      for (const tls::SpecEmit& m : o.emits) out.insert(m.message);
  return out;
}

std::string describe(const JointState& s) {
  std::ostringstream os;
  os << "client=" << s.client << " server=" << s.server << " c2s=[";
  for (std::size_t i = 0; i < s.c2s.size(); ++i)
    os << (i ? "," : "") << flight_name(s.c2s[i]);
  os << "] s2c=[";
  for (std::size_t i = 0; i < s.s2c.size(); ++i)
    os << (i ? "," : "") << flight_name(s.s2c[i]);
  os << "]";
  return os.str();
}

}  // namespace

std::string flight_name(const FlightMsg& msg) {
  if (msg.first == kAlertMarker) return "alert";
  std::string name = tls::handshake_type_name(msg.first);
  if (msg.second != "plain") name += "(" + msg.second + ")";
  return name;
}

ProductResult check_product(const StateMachineSpec& client,
                            const StateMachineSpec& server) {
  ProductResult result;
  Explorer explorer{client, server, {}, {}};
  explorer.explore();
  result.graph = std::move(explorer.graph);
  const JointGraph& graph = result.graph;

  PropertyResult termination;
  termination.name = "joint.termination";
  if (has_cycle(graph))
    termination.violations.push_back(
        "reachable joint graph has a cycle: a handshake schedule that "
        "never terminates");
  termination.notes.push_back("joint states: " +
                              std::to_string(graph.states.size()));
  termination.notes.push_back("joint edges: " +
                              std::to_string(graph.edges.size()));
  termination.passed = termination.violations.empty();

  PropertyResult deadlock;
  deadlock.name = "joint.deadlock_freedom";
  for (int id : graph.stuck_states)
    deadlock.violations.push_back("deadlocked joint state: " +
                                  describe(graph.states[id]));
  deadlock.notes.push_back("quiescent success states: " +
                           std::to_string(graph.done_states.size()));
  deadlock.notes.push_back("quiescent explicit-error states: " +
                           std::to_string(graph.error_states.size()));
  deadlock.passed = deadlock.violations.empty();

  PropertyResult reaches_done;
  reaches_done.name = "joint.reaches_done";
  if (graph.done_states.empty())
    reaches_done.violations.push_back(
        "no reachable joint state completes the handshake on both sides");
  reaches_done.passed = reaches_done.violations.empty();

  // Emission coverage: the two rule tables must mirror each other. An
  // "orphan emission" is a message one side can send that the peer has no
  // rule for anywhere (it would only ever land on the unexpected-message
  // policy); a "dead rule" is a message a side handles that the peer can
  // never emit. Either one is how a deleted compression/Merkle/resumption
  // rule or outcome escapes the progress properties — the alert policy
  // absorbs orphans into clean error terminals, so only this pairwise
  // check catches them.
  PropertyResult coverage;
  coverage.name = "joint.emission_coverage";
  auto check_coverage = [&](const StateMachineSpec& sender,
                            const StateMachineSpec& receiver) {
    std::set<std::uint8_t> sent = emittable_messages(sender);
    std::set<std::uint8_t> handled;
    for (const SpecTransition& t : receiver.transitions)
      handled.insert(t.message);
    for (std::uint8_t m : sent)
      if (!handled.count(m))
        coverage.violations.push_back(
            "orphan emission: " + sender.role + " can send " +
            tls::handshake_type_name(m) + " but " + receiver.role +
            " has no rule for it");
    for (std::uint8_t m : handled)
      if (!sent.count(m))
        coverage.violations.push_back(
            "dead rule: " + receiver.role + " handles " +
            tls::handshake_type_name(m) + " but " + sender.role +
            " never emits it");
    coverage.notes.push_back(sender.role + " emits " +
                             std::to_string(sent.size()) +
                             " message types, " + receiver.role +
                             " handles " + std::to_string(handled.size()));
  };
  check_coverage(client, server);
  check_coverage(server, client);
  coverage.passed = coverage.violations.empty();

  result.properties = {std::move(termination), std::move(deadlock),
                       std::move(reaches_done), std::move(coverage)};
  return result;
}

}  // namespace pqtls::verify
