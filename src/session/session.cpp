#include "session/session.hpp"

#include "crypto/ct.hpp"

namespace pqtls::session {

SessionTicket::~SessionTicket() { ct::wipe(psk); }

void SessionCache::put(SessionTicket ticket) {
  if (ticket.identity.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  by_server_[ticket.server_name].push_back(std::move(ticket));
}

std::optional<SessionTicket> SessionCache::take(const std::string& server_name,
                                                std::uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_server_.find(server_name);
  if (it == by_server_.end()) return std::nullopt;
  auto& queue = it->second;
  while (!queue.empty()) {
    SessionTicket ticket = std::move(queue.front());
    queue.pop_front();
    if (ticket.usable_at(now_ms)) {
      if (queue.empty()) by_server_.erase(it);
      return ticket;
    }
    // expired while cached: drop and keep scanning
  }
  by_server_.erase(it);
  return std::nullopt;
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, queue] : by_server_) n += queue.size();
  return n;
}

}  // namespace pqtls::session
