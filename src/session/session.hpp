// Session-resumption state for both ends of the connection:
//
//  * TicketStore — the server side. Owns the ticket-encryption key, mints
//    self-encrypted tickets and validates redeemed ones (lifetime window
//    enforced against the server's clock). Stateless per ticket, so it is
//    shared by every ServerConnection of a testbed/loadgen run; the only
//    mutable state is the issue/redeem counters, which are atomic.
//
//  * SessionCache — the client side. A mutex-guarded cache of received
//    tickets keyed by server identity (SNI). Tickets are single-use
//    (RFC 8446 C.4 anti-replay guidance): take() removes what it returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "session/ticket.hpp"

namespace pqtls::session {

/// A ticket as the client holds it: the opaque identity to echo, the
/// derived PSK, and everything needed for the obfuscated age (4.2.11).
struct SessionTicket {
  std::string server_name;
  std::string ka;
  std::string sa;
  Bytes identity;  // opaque server blob, echoed in pre_shared_key
  Bytes psk;       // CT_SECRET: psk -- wiped by owner
  std::uint64_t received_at_ms = 0;
  std::uint32_t lifetime_s = 0;
  std::uint32_t age_add = 0;
  std::uint32_t max_early_data = 0;

  ~SessionTicket();
  SessionTicket() = default;
  SessionTicket(SessionTicket&&) = default;
  SessionTicket& operator=(SessionTicket&&) = default;
  SessionTicket(const SessionTicket&) = default;
  SessionTicket& operator=(const SessionTicket&) = default;

  /// obfuscated_ticket_age for a ClientHello sent at `now_ms`.
  std::uint32_t obfuscated_age(std::uint64_t now_ms) const {
    return static_cast<std::uint32_t>(now_ms - received_at_ms) + age_add;
  }
  /// Client-side freshness check against the advertised lifetime.
  bool usable_at(std::uint64_t now_ms) const {
    return now_ms >= received_at_ms &&
           (now_ms - received_at_ms) / 1000 < lifetime_s;
  }
};

/// Server-side ticket mint + validator. Thread-safe: the AEAD key is
/// immutable after construction and the counters are atomic.
class TicketStore {
 public:
  /// Derives the ticket-encryption key from a deterministic seed stream.
  explicit TicketStore(crypto::Drbg key_rng)
      : crypto_(key_rng.bytes(16)) {}

  /// Seal server-side resumption state into an opaque ticket blob.
  Bytes issue(const TicketState& state, crypto::Drbg& rng) {
    issued_.fetch_add(1, std::memory_order_relaxed);
    return crypto_.seal(state, rng);
  }

  /// Decrypt and validate a redeemed ticket against the server clock.
  /// nullopt = unknown/forged/expired — caller falls back to a full
  /// handshake (never a fatal alert; RFC 8446 4.2.11).
  std::optional<TicketState> validate(BytesView ticket,
                                      std::uint64_t now_ms) {
    auto state = crypto_.open(ticket);
    if (!state) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (now_ms < state->issued_at_ms ||
        (now_ms - state->issued_at_ms) / 1000 >= state->lifetime_s) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    redeemed_.fetch_add(1, std::memory_order_relaxed);
    return state;
  }

  std::uint64_t issued() const { return issued_.load(std::memory_order_relaxed); }
  std::uint64_t redeemed() const { return redeemed_.load(std::memory_order_relaxed); }
  std::uint64_t expired() const { return expired_.load(std::memory_order_relaxed); }
  std::uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  TicketCrypto crypto_;
  std::atomic<std::uint64_t> issued_{0};
  std::atomic<std::uint64_t> redeemed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// Client-side ticket cache keyed by server identity. FIFO per server,
/// single-use tickets.
class SessionCache {
 public:
  void put(SessionTicket ticket);
  /// Pop the oldest usable ticket for `server_name`; nullopt when the
  /// cache has none (the caller then runs a full handshake). Expired
  /// tickets encountered on the way are dropped.
  std::optional<SessionTicket> take(const std::string& server_name,
                                    std::uint64_t now_ms);
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::deque<SessionTicket>> by_server_;
};

}  // namespace pqtls::session
