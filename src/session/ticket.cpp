#include "session/ticket.hpp"

#include "crypto/ct.hpp"
#include "tls/wire.hpp"

namespace pqtls::session {

namespace {

constexpr std::uint8_t kTicketVersion = 1;
constexpr std::size_t kNonceLen = 12;

}  // namespace

TicketState::~TicketState() { ct::wipe(resumption_psk); }

Bytes encode_ticket_state(const TicketState& state) {
  tls::Writer w;
  w.u8(kTicketVersion);
  w.vec8(BytesView{reinterpret_cast<const std::uint8_t*>(state.ka.data()),
                   state.ka.size()});
  w.vec8(BytesView{reinterpret_cast<const std::uint8_t*>(state.sa.data()),
                   state.sa.size()});
  w.vec8(state.resumption_psk);
  w.u32(static_cast<std::uint32_t>(state.issued_at_ms >> 32));
  w.u32(static_cast<std::uint32_t>(state.issued_at_ms));
  w.u32(state.lifetime_s);
  w.u32(state.age_add);
  w.vec8(state.nonce);
  return w.buffer();
}

std::optional<TicketState> parse_ticket_state(BytesView data) {
  tls::Reader r(data);
  if (r.u8() != kTicketVersion) return std::nullopt;
  TicketState out;
  Bytes ka = r.vec8();
  Bytes sa = r.vec8();
  out.resumption_psk = r.vec8();
  std::uint64_t hi = r.u32();
  out.issued_at_ms = (hi << 32) | r.u32();
  out.lifetime_s = r.u32();
  out.age_add = r.u32();
  out.nonce = r.vec8();
  if (r.failed() || !r.done() || out.resumption_psk.empty())
    return std::nullopt;
  out.ka.assign(ka.begin(), ka.end());
  out.sa.assign(sa.begin(), sa.end());
  return out;
}

Bytes TicketCrypto::seal(const TicketState& state, crypto::Drbg& rng) const {
  Bytes nonce = rng.bytes(kNonceLen);
  Bytes plaintext = encode_ticket_state(state);  // CT_SECRET: plaintext
  ct::Wiper plaintext_guard(plaintext);
  Bytes out = nonce;
  append(out, aead_.seal(nonce, {}, plaintext));
  return out;
}

std::optional<TicketState> TicketCrypto::open(BytesView ticket) const {
  if (ticket.size() < kNonceLen + crypto::AesGcm::kTagSize)
    return std::nullopt;
  auto plaintext =
      aead_.open(ticket.first(kNonceLen), {}, ticket.subspan(kNonceLen));
  if (!plaintext) return std::nullopt;
  ct::Wiper plaintext_guard(*plaintext);
  return parse_ticket_state(*plaintext);
}

}  // namespace pqtls::session
