// Self-encrypted session tickets (RFC 8446 4.6.1 + RFC 5077 style
// stateless server): the server serialises the resumption state it will
// need later — algorithm pair, PSK, issue time, lifetime — and seals it
// under a process-local AES-128-GCM session-ticket-encryption key. The
// ticket the client echoes back in pre_shared_key IS the server's state;
// no per-client storage is required.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/aes.hpp"
#include "crypto/drbg.hpp"

namespace pqtls::session {

using pqtls::Bytes;
using pqtls::BytesView;

/// Everything the server must recover from a redeemed ticket.
struct TicketState {
  std::string ka;  // catalog names pin the resumed algorithm pair
  std::string sa;
  Bytes resumption_psk;  // CT_SECRET: resumption_psk -- wiped by owner
  std::uint64_t issued_at_ms = 0;
  std::uint32_t lifetime_s = 0;
  std::uint32_t age_add = 0;
  Bytes nonce;  // the NewSessionTicket nonce the PSK was derived from

  ~TicketState();
  TicketState() = default;
  TicketState(TicketState&&) = default;
  TicketState& operator=(TicketState&&) = default;
  TicketState(const TicketState&) = default;
  TicketState& operator=(const TicketState&) = default;
};

Bytes encode_ticket_state(const TicketState& state);
std::optional<TicketState> parse_ticket_state(BytesView data);

/// AES-128-GCM wrapping of TicketState under the store's ticket key.
/// Layout: 12-byte random nonce || ciphertext || 16-byte tag.
class TicketCrypto {
 public:
  explicit TicketCrypto(BytesView key16) : aead_(key16) {}

  Bytes seal(const TicketState& state, crypto::Drbg& rng) const;
  std::optional<TicketState> open(BytesView ticket) const;

 private:
  crypto::AesGcm aead_;
};

}  // namespace pqtls::session
