// Reusable discrete-event core: a binary min-heap of (time, key, payload)
// entries over a contiguous vector. Ordering is strictly (time, then key) —
// callers encode their tie-break discipline in the 64-bit key (the classic
// EventLoop uses a global FIFO sequence; the ShardedEventLoop packs an
// (actor, per-actor sequence) pair so simultaneous events order the same
// way at every shard count). The payload is generic: EventLoop stores a
// std::function, the sharded loop a trivially-copyable pooled event, which
// is what keeps the fleet simulator's hot path free of per-event heap
// allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pqtls::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    double time;
    std::uint64_t key;
    Payload payload;
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  void reserve(std::size_t n) { heap_.reserve(n); }

  void push(double time, std::uint64_t key, Payload payload) {
    heap_.push_back(Entry{time, key, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  /// Earliest entry; undefined when empty.
  const Entry& top() const { return heap_.front(); }

  Entry pop() {
    Entry out = std::move(heap_.front());
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return out;
  }

 private:
  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t left = 2 * i + 1, best = i;
      if (left < n && before(heap_[left], heap_[best])) best = left;
      if (left + 1 < n && before(heap_[left + 1], heap_[best]))
        best = left + 1;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Entry> heap_;
};

}  // namespace pqtls::sim
