// Discrete-event simulation loop. The virtual clock advances through
// scheduled events only; hosts inject *measured real compute time* of the
// actual cryptographic/TLS code as virtual delays, and links inject
// propagation/serialization delays — reproducing the paper's
// "real crypto + emulated network" testbed (see DESIGN.md section 1).
//
// The heap itself lives in sim::EventQueue (shared with the sharded fleet
// loop); this class keeps the single-queue std::function front-end every
// testbed/TCP call site uses. Ordering is (time, global FIFO sequence),
// unchanged — campaign goldens depend on it.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"

namespace pqtls::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  /// Observes past-time scheduling (see schedule_at); args are the
  /// requested time and the clock value it was clamped to.
  using PastScheduleHook = std::function<void(double requested, double now)>;

  /// Sentinel horizon for run(): drain the queue without advancing the
  /// clock past the last event (there is no "end time" to advance to).
  static constexpr double kRunForever = 1e18;

  double now() const { return now_; }

  /// Schedule at an absolute simulation time. A time in the past is
  /// clamped to now — that keeps sloppy "zero-delay" call sites working —
  /// but it is also exactly how a shard-synchronization bug would be
  /// silently absorbed, so every clamp is counted and reported through
  /// past_schedules() / the optional hook instead of vanishing.
  void schedule_at(double time, Callback cb) {
    if (time < now_) {
      ++past_schedules_;
      if (past_schedule_hook_) past_schedule_hook_(time, now_);
      time = now_;
    }
    queue_.push(time, next_seq_++, std::move(cb));
  }
  void schedule_in(double delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Number of schedule_at calls that asked for a time before now().
  std::uint64_t past_schedules() const { return past_schedules_; }
  /// Install an observer fired on every past-time clamp (before the event
  /// is enqueued). Debug harnesses assert/log here; null detaches.
  void set_past_schedule_hook(PastScheduleHook hook) {
    past_schedule_hook_ = std::move(hook);
  }

  /// Run events until the queue is empty or the horizon is reached.
  /// Returns the number of events processed. With an explicit horizon the
  /// clock finishes AT the horizon even when the queue drains early —
  /// otherwise a back-to-back `run(h); schedule_in(d)` pair would schedule
  /// "future" work in the past (before h).
  std::size_t run(double horizon = kRunForever) {
    std::size_t processed = 0;
    while (!queue_.empty() && !stopped_) {
      if (queue_.top().time > horizon) break;
      auto event = queue_.pop();
      now_ = event.time;
      event.payload();
      ++processed;
    }
    if (horizon != kRunForever && !stopped_ && now_ < horizon) now_ = horizon;
    return processed;
  }

  /// Process exactly one event; returns false when idle.
  bool run_one() {
    if (queue_.empty() || stopped_) return false;
    auto event = queue_.pop();
    now_ = event.time;
    event.payload();
    return true;
  }

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  bool idle() const { return queue_.empty(); }

 private:
  EventQueue<Callback> queue_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;  // FIFO tie-break for simultaneous events
  bool stopped_ = false;
  std::uint64_t past_schedules_ = 0;
  PastScheduleHook past_schedule_hook_;
};

}  // namespace pqtls::sim
