// Discrete-event simulation core. The virtual clock advances through
// scheduled events only; hosts inject *measured real compute time* of the
// actual cryptographic/TLS code as virtual delays, and links inject
// propagation/serialization delays — reproducing the paper's
// "real crypto + emulated network" testbed (see DESIGN.md section 1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pqtls::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Sentinel horizon for run(): drain the queue without advancing the
  /// clock past the last event (there is no "end time" to advance to).
  static constexpr double kRunForever = 1e18;

  double now() const { return now_; }

  /// Schedule at an absolute simulation time (clamped to now).
  void schedule_at(double time, Callback cb) {
    if (time < now_) time = now_;
    queue_.push(Event{time, next_seq_++, std::move(cb)});
  }
  void schedule_in(double delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Run events until the queue is empty or the horizon is reached.
  /// Returns the number of events processed. With an explicit horizon the
  /// clock finishes AT the horizon even when the queue drains early —
  /// otherwise a back-to-back `run(h); schedule_in(d)` pair would schedule
  /// "future" work in the past (before h).
  std::size_t run(double horizon = kRunForever) {
    std::size_t processed = 0;
    while (!queue_.empty() && !stopped_) {
      if (queue_.top().time > horizon) break;
      Event event = queue_.top();
      queue_.pop();
      now_ = event.time;
      event.callback();
      ++processed;
    }
    if (horizon != kRunForever && !stopped_ && now_ < horizon) now_ = horizon;
    return processed;
  }

  /// Process exactly one event; returns false when idle.
  bool run_one() {
    if (queue_.empty() || stopped_) return false;
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    event.callback();
    return true;
  }

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    Callback callback;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
};

}  // namespace pqtls::sim
