#include "sim/sharded_loop.hpp"

#include <barrier>
#include <cassert>
#include <cmath>
#include <limits>
#include <thread>

namespace pqtls::sim {

ShardedEventLoop::ShardedEventLoop(std::uint32_t shards, double lookahead)
    : lookahead_(lookahead) {
  // Without a positive lookahead no window can bound cross-shard
  // influence; fall back to one shard, where the barrier is vacuous.
  if (shards < 1 || lookahead_ <= 0) shards = 1;
  shards_.resize(shards);
  for (auto& shard : shards_) shard.mail.resize(shards);
}

ShardedEventLoop::ActorId ShardedEventLoop::add_actor(std::uint32_t shard) {
  assert(!running_);
  actor_shard_.push_back(shard % shards_.size());
  actor_seq_.push_back(0);
  return static_cast<ActorId>(actor_shard_.size() - 1);
}

void ShardedEventLoop::schedule(double now, ActorId from, ActorId to,
                                double time, PodEvent::Fn fn, void* ctx,
                                std::uint64_t arg) {
  assert(from < actor_shard_.size() && to < actor_shard_.size());
  Shard& src = shards_[actor_shard_[from]];
  const std::uint32_t dst = actor_shard_[to];
  // The key makes simultaneous-event order a pure function of the actor
  // graph: (scheduling actor, its own sequence), never the shard layout.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 40) | actor_seq_[from]++;
  if (from != to && time < now + lookahead_) {
    // Cross-actor influence faster than the lookahead would have to be
    // visible inside the current window — a synchronization bug. Clamp to
    // the conservative horizon so the run stays correct, and surface it.
    assert(!running_ && "cross-actor schedule under the lookahead horizon");
    ++src.past_schedules;
    time = now + lookahead_;
  } else if (time < now) {
    assert(!running_ && "past-time schedule");
    ++src.past_schedules;
    time = now;
  }
  if (!running_ || actor_shard_[from] == dst) {
    // Setup-time and same-shard events go straight into the destination
    // queue; the (time, key) heap order makes insertion order irrelevant.
    shards_[dst].queue.push(time, key, PodEvent{fn, ctx, arg});
  } else {
    src.mail[dst].push_back({time, key, PodEvent{fn, ctx, arg}});
  }
}

void ShardedEventLoop::run_window(Shard& shard, double window_end,
                                  double horizon) {
  auto& queue = shard.queue;
  while (!queue.empty()) {
    const double t = queue.top().time;
    if (t >= window_end || t > horizon) break;
    auto event = queue.pop();
    event.payload.fn(event.payload.ctx, event.time, event.payload.arg);
    ++shard.processed;
  }
}

bool ShardedEventLoop::advance_window(double horizon, double& window_end) {
  // Deterministic drain: source shards in index order, entries in emission
  // order. Order only matters for reproducibility-of-construction; the
  // (time, key) heap discipline already fixes execution order.
  for (auto& src : shards_)
    for (std::size_t dst = 0; dst < src.mail.size(); ++dst) {
      for (auto& entry : src.mail[dst])
        shards_[dst].queue.push(entry.time, entry.key,
                                std::move(entry.payload));
      src.mail[dst].clear();
    }
  double tmin = std::numeric_limits<double>::infinity();
  for (const auto& shard : shards_)
    if (!shard.queue.empty() && shard.queue.top().time < tmin)
      tmin = shard.queue.top().time;
  if (tmin > horizon) return false;
  // Jump idle stretches: open the grid-aligned window containing the
  // earliest pending event (alignment keeps the conservative argument —
  // anything scheduled from inside the window lands at or past its end).
  double end = (std::floor(tmin / lookahead_) + 1.0) * lookahead_;
  if (end <= tmin) end = tmin + lookahead_;  // fp-rounding guard
  window_end = end;
  return true;
}

std::uint64_t ShardedEventLoop::run(double horizon) {
  running_ = true;
  if (shards_.size() == 1) {
    // One shard: the window machinery is pure overhead; drain directly.
    run_window(shards_[0], std::numeric_limits<double>::infinity(), horizon);
  } else {
    double window_end = 0;
    bool pending = advance_window(horizon, window_end);
    // Workers advance in lockstep; the barrier's completion step (one
    // thread, synchronized against every arrival) drains the mailboxes
    // and opens the next window.
    std::barrier sync(static_cast<std::ptrdiff_t>(shards_.size()),
                      [&]() noexcept {
                        pending = advance_window(horizon, window_end);
                      });
    auto worker = [&](Shard& shard) {
      while (pending) {
        run_window(shard, window_end, horizon);
        sync.arrive_and_wait();
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(shards_.size() - 1);
    for (std::size_t s = 1; s < shards_.size(); ++s)
      threads.emplace_back(worker, std::ref(shards_[s]));
    worker(shards_[0]);
    for (auto& t : threads) t.join();
  }
  running_ = false;
  std::uint64_t processed = 0;
  for (const auto& shard : shards_) processed += shard.processed;
  return processed;
}

std::uint64_t ShardedEventLoop::past_schedules() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard.past_schedules;
  return n;
}

}  // namespace pqtls::sim
