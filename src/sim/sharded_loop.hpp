// Sharded discrete-event loop for fleet-scale simulation (DESIGN.md §6f).
//
// The model is an actor system: every simulated component (the loadgen
// frontend, each server of a fleet) is an *actor* pinned to one of N
// *shards*, and each shard owns a private event queue that a dedicated
// worker thread drains. Virtual time advances in conservative windows of
// length `lookahead` (the minimum link delay of the scenario): within a
// window shards run independently, because no cross-actor influence can
// travel faster than one link delay; at the window barrier the cross-shard
// mailboxes are drained — in shard order, in emission order — into the
// destination queues, and the next window starts.
//
// Determinism contract (the same discipline as the campaign reorder
// buffer): results are bit-identical at ANY shard count, including 1.
//   - Events order by (time, key) where key = (scheduling actor, that
//     actor's own monotone sequence). An actor's schedule history is a
//     pure function of its event history, so keys are shard-layout
//     independent — simultaneous events at one destination execute in the
//     same order no matter how actors are partitioned.
//   - Cross-ACTOR scheduling must be at least `lookahead` in the future
//     (enforced; violations are counted and asserted in debug builds), so
//     same-time events on different actors are always causally independent
//     and their relative execution order cannot matter.
//   - Events are plain structs (fn pointer + ctx + u64 arg) in a slab
//     vector heap (sim::EventQueue) — no per-event std::function heap
//     allocation, no allocator-order effects, and a hot path that sustains
//     the ~10^6-connection fleet runs.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"

namespace pqtls::sim {

/// Trivially-copyable pooled event: `fn(ctx, now, arg)` runs at its
/// scheduled virtual time. Pack connection ids / stages into `arg`.
struct PodEvent {
  using Fn = void (*)(void* ctx, double now, std::uint64_t arg);
  Fn fn;
  void* ctx;
  std::uint64_t arg;
};

class ShardedEventLoop {
 public:
  using ActorId = std::uint32_t;

  /// `shards` >= 1 worker queues; `lookahead` > 0 is the conservative
  /// synchronization horizon (use the scenario's minimum link delay). A
  /// non-positive lookahead cannot bound cross-shard influence, so the
  /// loop degrades to a single shard (still correct, just serial).
  ShardedEventLoop(std::uint32_t shards, double lookahead);

  /// Register an actor on a shard (round-robin helper: shard = id % shards
  /// is the caller's choice). Must happen before run().
  ActorId add_actor(std::uint32_t shard);

  std::uint32_t shards() const { return static_cast<std::uint32_t>(shards_.size()); }
  double lookahead() const { return lookahead_; }

  /// Schedule `fn(ctx, time, arg)` on actor `to`, called from actor
  /// `from`'s handler at virtual time `now` (pass 0/any actor during
  /// setup, before run()). Rules, both counted by past_schedules():
  ///   - time < now is clamped to now (same-actor only);
  ///   - a cross-actor event less than `lookahead` ahead is a
  ///     synchronization bug: it is clamped to now + lookahead so the run
  ///     stays conservative, asserted in debug builds.
  void schedule(double now, ActorId from, ActorId to, double time,
                PodEvent::Fn fn, void* ctx, std::uint64_t arg);

  /// Run all events with time <= horizon. Returns events processed.
  /// Single-shard runs stay on the calling thread; multi-shard runs spawn
  /// one worker per shard with a barrier per window.
  std::uint64_t run(double horizon);

  /// Scheduling-discipline violations absorbed (past-time or
  /// under-lookahead cross-actor schedules). A fleet engine bug detector:
  /// zero on every healthy run.
  std::uint64_t past_schedules() const;

 private:
  struct Shard {
    EventQueue<PodEvent> queue;
    std::uint64_t processed = 0;
    std::uint64_t past_schedules = 0;
    // Mailboxes: one emission-ordered buffer per destination shard.
    std::vector<std::vector<EventQueue<PodEvent>::Entry>> mail;
  };

  void run_window(Shard& shard, double window_end, double horizon);
  // Drains mailboxes; returns false once nothing <= horizon remains,
  // otherwise advances window_end past the earliest pending event.
  bool advance_window(double horizon, double& window_end);

  std::vector<Shard> shards_;
  std::vector<std::uint32_t> actor_shard_;
  std::vector<std::uint64_t> actor_seq_;
  double lookahead_;
  bool running_ = false;
};

}  // namespace pqtls::sim
