// Server capacity under concurrent handshake load (Sec. 5 extension): for
// the headline KA x SA pairs, sweep an open-loop Poisson arrival rate from
// idle past saturation on a modeled multi-core server and print the
// saturation curve plus the capacity knee (highest offered load whose p99
// handshake latency stays under the SLO). Virtual time: the whole table is
// deterministic and takes seconds of wall clock.
//
//   loadgen_capacity [points] [out.jsonl]
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "loadgen/sweep.hpp"

namespace {

using namespace pqtls;

struct Pair {
  const char* ka;
  const char* sa;
};

// Classical baseline, the PQ level-1/3 recommendations, a code-based KEM,
// and the hash-based outlier whose CPU cost dominates its wire cost.
constexpr Pair kPairs[] = {
    {"x25519", "rsa:2048"},        {"kyber512", "dilithium2"},
    {"kyber768", "dilithium3"},    {"hqc128", "falcon512"},
    {"kyber512", "sphincs128"},
};

}  // namespace

int main(int argc, char** argv) {
  int points = argc > 1 ? campaign::positive_int_or(argv[1], 10,
                                                    "points (argv[1])")
                        : 10;
  std::ofstream jsonl;
  if (argc > 2) {
    jsonl.open(argv[2]);
    if (!jsonl) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", argv[2]);
      return 1;
    }
  }

  loadgen::LoadConfig base;
  base.arrival = loadgen::Arrival::kPoisson;
  base.cores = 4;
  base.backlog = 512;
  base.timeout_s = 1.0;
  base.duration_s = 5.0;
  base.warmup_s = 0.5;

  loadgen::SweepOptions opts;
  opts.points = points;
  opts.slo_s = 0.050;

  std::optional<campaign::JsonlSink> sink;
  if (jsonl.is_open()) sink.emplace(jsonl);

  std::printf("Server capacity, %d-core modeled server, p99 SLO %.0f ms, "
              "%d-point Poisson sweep\n\n",
              base.cores, opts.slo_s * 1e3, opts.points);
  std::printf("%-26s %12s %12s %12s %10s  %s\n", "cell", "capacity[1/s]",
              "knee[1/s]", "knee ach.", "knee p99", "knee/cap");

  bool all_ok = true;
  long long sim_events = 0;
  const auto wall0 = std::chrono::steady_clock::now();
  for (const Pair& pair : kPairs) {
    loadgen::LoadConfig config = base;
    config.ka = pair.ka;
    config.sa = pair.sa;
    loadgen::SweepResult r = loadgen::run_sweep(config, opts);
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%s/%s", pair.ka, pair.sa);
    if (r.knee_offered > 0) {
      double frac = r.knee_offered / r.analytic_capacity;
      std::printf("%-26s %12.1f %12.1f %12.1f %8.2fms  %6.0f%% %s\n", cell,
                  r.analytic_capacity, r.knee_offered, r.knee_achieved,
                  r.knee_p99 * 1e3, frac * 100,
                  bench::bar(frac, 1.0).c_str());
    } else {
      std::printf("%-26s %12.1f %12s\n", cell, r.analytic_capacity,
                  "no point in SLO");
      all_ok = false;
    }
    for (const auto& point : r.points) sim_events += point.metrics.sim_events;
    if (sink) {
      int index = 0;
      for (const auto& point : r.points) {
        campaign::CellOutcome o;
        o.campaign = "loadgen-capacity";
        char id[96];
        std::snprintf(id, sizeof(id), "%s/%s/sweep-%02d", pair.ka, pair.sa,
                      index++);
        o.cell.id = id;
        o.cell.config.ka = pair.ka;
        o.cell.config.sa = pair.sa;
        o.cell.loadgen = point.config;
        o.load = point.metrics;
        if (!point.metrics.ok)
          o.error = "no handshake completed in the window";
        sink->cell(o);
      }
    }
  }

  std::printf("\nknee = highest offered load with p99 <= SLO and <1%% "
              "loss; capacity = cores / per-handshake server CPU.\n");

  // Simulator throughput, for tracking the discrete-event core itself:
  // total events across every sweep point, wall-clock rate, and peak RSS.
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  std::printf("simulated %lld events in %.2fs wall (%.2fM events/s), "
              "peak RSS %.1f MiB\n",
              sim_events, wall_s,
              wall_s > 0 ? sim_events / wall_s / 1e6 : 0.0,
              static_cast<double>(usage.ru_maxrss) / 1024.0);
  return all_ok ? 0 : 2;
}
