// Reproduces Figure 4: KAs (top) and SAs (bottom) ranked by logarithmic
// overall handshake latency, linearly scaled to [0, 10] and rounded; the
// fastest algorithms get the lowest bucket (leftmost in the paper's figure).
#include <cstdio>

#include "analysis/ranking.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = bench::sample_count(argc, argv, 9);

  std::vector<std::pair<std::string, double>> ka_latencies;
  for (const auto& row : bench::table2a_kas()) {
    testbed::ExperimentConfig config;
    config.ka = row.name;
    config.sa = "rsa:2048";
    config.sample_handshakes = samples;
    auto r = testbed::run_experiment(config);
    if (r.ok) ka_latencies.emplace_back(row.name, r.median_total);
  }

  std::vector<std::pair<std::string, double>> sa_latencies;
  for (const auto& row : bench::table2b_sas()) {
    testbed::ExperimentConfig config;
    config.ka = "x25519";
    config.sa = row.name;
    config.sample_handshakes = samples;
    auto r = testbed::run_experiment(config);
    if (r.ok) sa_latencies.emplace_back(row.name, r.median_total);
  }

  std::printf("Figure 4: algorithms ranked by log handshake latency "
              "(bucket 0 = fastest, 10 = slowest)\n");
  std::printf("\nKey agreements (with rsa:2048):\n%s",
              analysis::render_ranking(analysis::rank_by_latency(ka_latencies))
                  .c_str());
  std::printf("\nSignature algorithms (with x25519):\n%s",
              analysis::render_ranking(analysis::rank_by_latency(sa_latencies))
                  .c_str());
  return 0;
}
