// Reproduces Figure 4: KAs (top) and SAs (bottom) ranked by logarithmic
// overall handshake latency, linearly scaled to [0, 10] and rounded; the
// fastest algorithms get the lowest bucket (leftmost in the paper's figure).
//
// Runs the "fig4" campaign (KA sweep with rsa:2048 plus SA sweep with
// x25519, deduplicated) through an in-memory sink and feeds the collected
// medians to the ranking analysis.
#include <cstdio>

#include "analysis/ranking.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  const campaign::CampaignSpec* spec = campaign::find_campaign("fig4");
  campaign::RunnerOptions opts;
  opts.samples = bench::sample_count(argc, argv, 9);
  opts.workers = campaign::env_workers(1);
  opts.time_model = testbed::TimeModel::kMeasured;  // paper-fidelity clock

  campaign::CollectSink collect;
  campaign::run_campaign(*spec, opts, {&collect});

  // The shared x25519/rsa:2048 cell contributes to both rankings, exactly
  // as it appeared in both of the paper's sweeps.
  std::vector<std::pair<std::string, double>> ka_latencies, sa_latencies;
  for (const auto& outcome : collect.outcomes()) {
    if (!outcome.ok()) continue;
    if (outcome.cell.config.sa == "rsa:2048")
      ka_latencies.emplace_back(outcome.cell.config.ka,
                                outcome.result.median_total);
    if (outcome.cell.config.ka == "x25519")
      sa_latencies.emplace_back(outcome.cell.config.sa,
                                outcome.result.median_total);
  }

  std::printf("Figure 4: algorithms ranked by log handshake latency "
              "(bucket 0 = fastest, 10 = slowest)\n");
  std::printf("\nKey agreements (with rsa:2048):\n%s",
              analysis::render_ranking(analysis::rank_by_latency(ka_latencies))
                  .c_str());
  std::printf("\nSignature algorithms (with x25519):\n%s",
              analysis::render_ranking(analysis::rank_by_latency(sa_latencies))
                  .c_str());
  return 0;
}
