// Ablation: the 2-RTT HelloRetryRequest fallback the paper explicitly
// configured away ("we focus on 1-RTT handshakes and configured TLS such
// that the 2-RTT fallback never occurred"). Measures what that choice is
// worth: handshakes where the client guesses the wrong group and the server
// answers with HelloRetryRequest, across network scenarios.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = bench::sample_count(argc, argv, 7);

  static const char* kKas[] = {"kyber512", "kyber768", "hqc128", "bikel1"};
  const testbed::Scenario scenarios[] = {
      testbed::standard_scenarios()[0],  // no emulation
      testbed::standard_scenarios()[3],  // 1 s RTT
      testbed::standard_scenarios()[5],  // 5G
  };

  std::printf("Ablation: 1-RTT (client guesses the server group) vs 2-RTT "
              "(HelloRetryRequest after a wrong x25519 guess);\nmedian "
              "full-handshake latency in ms, SA = dilithium2, %d samples "
              "per cell\n\n",
              samples);
  std::printf("%-10s", "KA");
  for (const auto& s : scenarios)
    std::printf(" %12.12s %12.12s", (s.name + " 1RTT").c_str(),
                (s.name + " HRR").c_str());
  std::printf("\n");

  for (const char* ka : kKas) {
    std::printf("%-10s", ka);
    for (const auto& scenario : scenarios) {
      for (bool hrr : {false, true}) {
        testbed::ExperimentConfig config;
        config.ka = ka;
        config.sa = "dilithium2";
        config.netem = scenario.netem;
        config.sample_handshakes = samples;
        if (hrr) config.client_wrong_guess = "x25519";
        auto r = testbed::run_experiment(config);
        if (r.ok)
          std::printf(" %12.2f", r.median_total * 1e3);
        else
          std::printf(" %12s", "FAIL");
        std::fflush(stdout);
      }
    }
    std::printf("\n");
  }
  std::printf("\nReading: the wrong guess costs one extra round trip plus a "
              "second key generation —\nnegligible on the LAN, a full extra "
              "second at a 1 s RTT. Pre-computing the right\nkey share (the "
              "paper's setup, and what browsers deploy) is what makes PQ TLS "
              "1-RTT.\n");
  return 0;
}
