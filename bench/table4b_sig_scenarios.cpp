// Reproduces Table 4b: median full-handshake latency for all SAs (with
// X25519 as KA, plus the rsa3072_dilithium2 hybrid) under the emulated
// network scenarios. The High-Delay column exposes the paper's key TCP
// finding: flights exceeding the initial congestion window cost extra RTTs
// (SPHINCS+ at 3-4 RTTs, Dilithium5 at 2 RTTs).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = bench::sample_count(argc, argv, 7);
  const auto& scenarios = testbed::standard_scenarios();

  // Table 4b includes the rsa3072_dilithium2 hybrid on top of Table 2b's SAs.
  std::vector<bench::SaRow> rows = bench::table2b_sas();
  rows.insert(rows.begin() + 11, {2, "rsa3072_dilithium2"});

  std::printf("Table 4b: SAs x network scenarios, median full-handshake "
              "latency in ms (%d samples per cell)\n",
              samples);
  std::printf("%-4s %-19s", "Lvl", "SA");
  for (const auto& s : scenarios) std::printf(" %12.12s", s.name.c_str());
  std::printf("\n");

  for (const auto& row : rows) {
    std::printf("%-4d %-19s", row.level, row.name);
    for (const auto& scenario : scenarios) {
      testbed::ExperimentConfig config;
      config.ka = "x25519";
      config.sa = row.name;
      config.netem = scenario.netem;
      config.sample_handshakes = samples;
      testbed::ExperimentResult r = testbed::run_experiment(config);
      if (r.ok)
        std::printf(" %12.2f", r.median_total * 1e3);
      else
        std::printf(" %12s", "FAIL");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
