// Reproduces Table 4b: median full-handshake latency for all SAs (with
// X25519 as KA, plus the rsa3072_dilithium2 hybrid) under the emulated
// network scenarios. The High-Delay column exposes the paper's key TCP
// finding: flights exceeding the initial congestion window cost extra RTTs
// (SPHINCS+ at 3-4 RTTs, Dilithium5 at 2 RTTs).
//
// A thin declaration over the campaign engine (scenario-matrix ASCII
// layout): argv[1] overrides the sample count, argv[2] names an optional
// JSONL output file, PQTLS_WORKERS parallelizes.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return pqtls::bench::run_declared_campaign("table4b", argc, argv, 7);
}
