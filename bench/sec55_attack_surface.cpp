// Reproduces the section 5.5 analysis ("PQ TLS for Attack Scenarios"):
// the asymmetry levers an attacker could exploit — the server/client CPU
// cost ratio (algorithmic-complexity attacks) and the server/client data
// amplification factor (spoofed-request reflection; compare QUIC's mandated
// 3x anti-amplification limit). The main lever in both is the choice of SA.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = bench::sample_count(argc, argv, 8);

  struct Row {
    std::string sa;
    double amplification;
    double cpu_ratio;
  };
  std::vector<Row> rows;

  std::printf("Section 5.5: attack-surface analysis per SA (KA = x25519, %d "
              "samples each)\n\n",
              samples);
  std::printf("%-19s %10s %10s %8s | %9s %9s %8s\n", "SA", "Client(B)",
              "Server(B)", "Amplif.", "SrvCPU ms", "CliCPU ms", "CPUratio");

  for (const auto& sa_row : bench::table2b_sas()) {
    testbed::ExperimentConfig config;
    config.ka = "x25519";
    config.sa = sa_row.name;
    config.white_box = true;
    config.sample_handshakes = samples;
    auto r = testbed::run_experiment(config);
    if (!r.ok) continue;
    double amp = static_cast<double>(r.server_bytes) /
                 static_cast<double>(r.client_bytes);
    double ratio = r.client_cpu_ms > 0 ? r.server_cpu_ms / r.client_cpu_ms : 0;
    std::printf("%-19s %10zu %10zu %7.1fx | %9.2f %9.2f %7.1fx\n",
                sa_row.name, r.client_bytes, r.server_bytes, amp,
                r.server_cpu_ms, r.client_cpu_ms, ratio);
    rows.push_back({sa_row.name, amp, ratio});
  }

  auto worst_amp = std::max_element(
      rows.begin(), rows.end(),
      [](const Row& a, const Row& b) { return a.amplification < b.amplification; });
  auto worst_cpu = std::max_element(
      rows.begin(), rows.end(),
      [](const Row& a, const Row& b) { return a.cpu_ratio < b.cpu_ratio; });
  if (worst_amp != rows.end() && worst_cpu != rows.end()) {
    std::printf("\nWorst amplification factor: %.1fx (%s); QUIC mandates "
                "at most 3x before address validation.\n",
                worst_amp->amplification, worst_amp->sa.c_str());
    std::printf("Worst server/client CPU asymmetry: %.1fx (%s).\n",
                worst_cpu->cpu_ratio, worst_cpu->sa.c_str());
  }
  return 0;
}
