// The paper's appendix-B "all-sphincs" experiment: compare SPHINCS+ variants
// to identify the best one for TLS. The paper concluded the haraka-"f"
// (fast) simple parameter sets win on handshake latency; the "s" (small)
// sets trade much slower signing for roughly half the signature bytes.
#include <chrono>
#include <cstdio>

#include "crypto/drbg.hpp"
#include "sig/sphincs.hpp"
#include "testbed/testbed.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = argc > 1 ? std::atoi(argv[1]) : 3;

  const sig::SphincsSigner* variants[] = {
      &sig::SphincsSigner::sphincs128(),  &sig::SphincsSigner::sphincs128s(),
      &sig::SphincsSigner::sphincs192(),  &sig::SphincsSigner::sphincs192s(),
      &sig::SphincsSigner::sphincs256(),  &sig::SphincsSigner::sphincs256s(),
  };

  std::printf("all-sphincs: SPHINCS+ variant selection (f = fast, s = "
              "small)\n\n");
  std::printf("%-12s %8s | %10s %10s | %12s %12s\n", "variant", "sig(B)",
              "sign ms", "verify ms", "HS med(ms)", "Server(B)");

  for (const auto* variant : variants) {
    crypto::Drbg rng(0x5F1);
    auto kp = variant->generate_keypair(rng);
    Bytes msg = rng.bytes(64);
    auto t0 = std::chrono::steady_clock::now();
    Bytes signature = variant->sign(kp.secret_key, msg, rng);
    double sign_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    t0 = std::chrono::steady_clock::now();
    bool ok = variant->verify(kp.public_key, msg, signature);
    double verify_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    if (!ok) {
      std::printf("%-12s VERIFY FAILED\n", variant->name().c_str());
      continue;
    }

    testbed::ExperimentConfig config;
    config.ka = "x25519";
    config.sa = variant->name();
    config.sample_handshakes = samples;
    auto r = testbed::run_experiment(config);

    std::printf("%-12s %8zu | %10.1f %10.2f | %12.2f %12zu\n",
                variant->name().c_str(), variant->signature_size(), sign_ms,
                verify_ms, r.ok ? r.median_total * 1e3 : -1.0,
                r.ok ? r.server_bytes : 0);
    std::fflush(stdout);
  }

  std::printf("\nThe f-variants dominate on handshake latency (the paper's "
              "selection criterion);\nthe s-variants halve the wire bytes at "
              "a >10x signing cost.\n");
  return 0;
}
