// Event-dispatch microbenchmark (google-benchmark): the pooled PodEvent
// hot path of the sharded fleet loop against the std::function front-end
// of the classic EventLoop, over the same sim::EventQueue heap. The fleet
// engine exists to sustain ~10^6-connection runs, so the pooled path must
// stay decisively faster than per-event std::function churn — CI gates on
// the ratio via the --gate flag (see .github/workflows/ci.yml).
//
//   sim_dispatch [--gate] [benchmark args...]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/sharded_loop.hpp"

namespace {

using pqtls::sim::EventQueue;
using pqtls::sim::PodEvent;

// Steady-state churn at a fixed queue depth: pop the earliest event,
// dispatch it, push a successor a pseudo-random interval ahead. This is
// the loadgen inner loop shape — every handshake stage pops one event and
// schedules the next.
constexpr std::size_t kDepth = 4096;

struct Counter {
  std::uint64_t fired = 0;
};

void pod_fire(void* ctx, double, std::uint64_t arg) {
  static_cast<Counter*>(ctx)->fired += arg;
}

// xorshift jitter keeps the heap's shape realistic (pure FIFO would stay
// trivially balanced) and identical across both benchmarks.
inline std::uint64_t next_jitter(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

void bm_dispatch_pooled(benchmark::State& state) {
  EventQueue<PodEvent> queue;
  queue.reserve(kDepth + 1);
  Counter counter;
  std::uint64_t jitter = 0x9e3779b97f4a7c15ull;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < kDepth; ++i)
    queue.push(static_cast<double>(next_jitter(jitter) % 1000), seq++,
               PodEvent{&pod_fire, &counter, 1});
  for (auto _ : state) {
    auto entry = queue.pop();
    entry.payload.fn(entry.payload.ctx, entry.time, entry.payload.arg);
    queue.push(entry.time + static_cast<double>(next_jitter(jitter) % 1000),
               seq++, PodEvent{&pod_fire, &counter, 1});
  }
  benchmark::DoNotOptimize(counter.fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_dispatch_function(benchmark::State& state) {
  EventQueue<std::function<void()>> queue;
  queue.reserve(kDepth + 1);
  Counter counter;
  std::uint64_t jitter = 0x9e3779b97f4a7c15ull;
  std::uint64_t seq = 0;
  // The captures mirror a classic-engine call site ([this, id, t, resumed,
  // ...]): more than two words, so every push heap-allocates the closure
  // (std::function's small-buffer optimization holds only 16 bytes).
  auto make = [&counter](std::uint64_t arg) {
    double deadline = static_cast<double>(arg);
    std::uint64_t id = arg ^ 0xdeadbeef;
    bool resumed = (arg & 1) != 0;
    return [&counter, arg, deadline, id, resumed] {
      counter.fired += arg + id + (resumed ? 1 : 0) +
                       static_cast<std::uint64_t>(deadline == 0);
    };
  };
  for (std::size_t i = 0; i < kDepth; ++i)
    queue.push(static_cast<double>(next_jitter(jitter) % 1000), seq++,
               make(1));
  for (auto _ : state) {
    auto entry = queue.pop();
    entry.payload();
    queue.push(entry.time + static_cast<double>(next_jitter(jitter) % 1000),
               seq++, make(1));
  }
  benchmark::DoNotOptimize(counter.fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(bm_dispatch_pooled);
BENCHMARK(bm_dispatch_function);

// --gate: run both loops outside the benchmark harness and fail (exit 1)
// unless the pooled path clears a conservative speed floor. The ratio
// varies with allocator and load, so the gate only catches regressions
// that erase the pooled path's advantage outright.
template <typename Fn>
double events_per_second(Fn&& loop_body, std::uint64_t iters) {
  auto t0 = std::chrono::steady_clock::now();
  loop_body(iters);
  double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  return s > 0 ? static_cast<double>(iters) / s : 0;
}

int run_gate() {
  constexpr std::uint64_t kIters = 2'000'000;
  Counter counter;
  std::uint64_t jitter = 0x9e3779b97f4a7c15ull;

  double pooled = events_per_second(
      [&](std::uint64_t n) {
        EventQueue<PodEvent> queue;
        queue.reserve(kDepth + 1);
        std::uint64_t seq = 0;
        for (std::size_t i = 0; i < kDepth; ++i)
          queue.push(static_cast<double>(next_jitter(jitter) % 1000), seq++,
                     PodEvent{&pod_fire, &counter, 1});
        for (std::uint64_t i = 0; i < n; ++i) {
          auto entry = queue.pop();
          entry.payload.fn(entry.payload.ctx, entry.time, entry.payload.arg);
          queue.push(
              entry.time + static_cast<double>(next_jitter(jitter) % 1000),
              seq++, PodEvent{&pod_fire, &counter, 1});
        }
      },
      kIters);

  double fn = events_per_second(
      [&](std::uint64_t n) {
        EventQueue<std::function<void()>> queue;
        queue.reserve(kDepth + 1);
        std::uint64_t seq = 0;
        auto make = [&counter](std::uint64_t arg) {
          double deadline = static_cast<double>(arg);
          std::uint64_t id = arg ^ 0xdeadbeef;
          bool resumed = (arg & 1) != 0;
          return [&counter, arg, deadline, id, resumed] {
            counter.fired += arg + id + (resumed ? 1 : 0) +
                             static_cast<std::uint64_t>(deadline == 0);
          };
        };
        for (std::size_t i = 0; i < kDepth; ++i)
          queue.push(static_cast<double>(next_jitter(jitter) % 1000), seq++,
                     make(1));
        for (std::uint64_t i = 0; i < n; ++i) {
          auto entry = queue.pop();
          entry.payload();
          queue.push(
              entry.time + static_cast<double>(next_jitter(jitter) % 1000),
              seq++, make(1));
        }
      },
      kIters);

  double ratio = fn > 0 ? pooled / fn : 0;
  std::printf("pooled  %10.2fM events/s\nstdfunc %10.2fM events/s\n"
              "ratio   %10.2fx (gate: pooled >= 1.2x std::function)\n",
              pooled / 1e6, fn / 1e6, ratio);
  benchmark::DoNotOptimize(counter.fired);
  if (ratio < 1.2) {
    std::fprintf(stderr,
                 "FAIL: pooled dispatch no longer beats std::function\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--gate") == 0) return run_gate();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
