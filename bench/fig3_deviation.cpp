// Reproduces Figure 3: the KA/SA independence analysis. For every
// non-hybrid KA x SA combination per NIST level group, measure the
// handshake latency under (a) the default OpenSSL buffering behaviour and
// (b) the optimized immediate-push behaviour, compute the deviation from
// the independence prediction E(k,s) - M(k,s), and report the improvement
// of the optimized behaviour (Figure 3c).
#include <cstdio>

#include "analysis/deviation.hpp"
#include "bench_common.hpp"

namespace {

using pqtls::analysis::LatencyTable;

LatencyTable measure(const std::vector<std::pair<std::string, std::string>>&
                         combos,
                     pqtls::tls::Buffering buffering, int samples) {
  LatencyTable table;
  for (const auto& [ka, sa] : combos) {
    pqtls::testbed::ExperimentConfig config;
    config.ka = ka;
    config.sa = sa;
    config.buffering = buffering;
    config.sample_handshakes = samples;
    auto r = pqtls::testbed::run_experiment(config);
    table[{ka, sa}] = r.ok ? r.median_total : -1;
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = bench::sample_count(argc, argv, 9);

  for (auto buffering : {tls::Buffering::kDefault, tls::Buffering::kImmediate}) {
    const char* mode_label = buffering == tls::Buffering::kDefault
                                 ? "Figure 3a: default OpenSSL behaviour"
                                 : "Figure 3b: optimized behaviour";
    std::printf("\n%s (deviation E(k,s) - M(k,s) in ms; positive = "
                "faster than predicted)\n",
                mode_label);

    for (const auto& level : bench::fig3_levels()) {
      // Collect the measurements needed: all combos + baselines.
      std::vector<std::pair<std::string, std::string>> combos;
      std::vector<std::pair<std::string, std::string>> needed;
      needed.emplace_back("x25519", "rsa:2048");
      for (const char* ka : level.kas) needed.emplace_back(ka, "rsa:2048");
      for (const char* sa : level.sas) needed.emplace_back("x25519", sa);
      for (const char* ka : level.kas)
        for (const char* sa : level.sas) {
          combos.emplace_back(ka, sa);
          needed.emplace_back(ka, sa);
        }
      LatencyTable table = measure(needed, buffering, samples);

      auto cells = analysis::deviation_analysis(table, combos);
      std::printf("  %s:\n", level.label);
      std::printf("  %-14s", "");
      for (const char* sa : level.sas) std::printf(" %14s", sa);
      std::printf("\n");
      std::size_t idx = 0;
      for (const char* ka : level.kas) {
        std::printf("  %-14s", ka);
        for (std::size_t s = 0; s < level.sas.size(); ++s) {
          std::printf(" %+14.2f", cells[idx++].deviation * 1e3);
        }
        std::printf("\n");
      }
    }
  }

  // Figure 3c: improvement of optimized over default behaviour per combo.
  std::printf("\nFigure 3c: improvement of the optimized behaviour "
              "(M_default - M_optimized in ms; positive = optimized faster)\n");
  for (const auto& level : bench::fig3_levels()) {
    std::vector<std::pair<std::string, std::string>> combos;
    for (const char* ka : level.kas)
      for (const char* sa : level.sas) combos.emplace_back(ka, sa);
    LatencyTable def = measure(combos, pqtls::tls::Buffering::kDefault, samples);
    LatencyTable opt =
        measure(combos, pqtls::tls::Buffering::kImmediate, samples);
    std::printf("  %s:\n", level.label);
    std::printf("  %-14s", "");
    for (const char* sa : level.sas) std::printf(" %14s", sa);
    std::printf("\n");
    for (const char* ka : level.kas) {
      std::printf("  %-14s", ka);
      for (const char* sa : level.sas) {
        double d = def[{ka, sa}], o = opt[{ka, sa}];
        std::printf(" %+14.2f", (d - o) * 1e3);
      }
      std::printf("\n");
    }
  }
  return 0;
}
