// Per-algorithm microbenchmarks (google-benchmark): keygen / encapsulate /
// decapsulate for every KEM and keygen / sign / verify for every SA. These
// are the per-operation costs behind the paper's end-to-end latencies and
// directly support its white-box attribution (methodology supplement).
//
// The backend rows time the dispatchable kernels (Kyber/Dilithium NTT,
// Haraka permutation) under every compiled backend, and the batch rows
// time encapsulate_batch / verify_batch against their sequential loops.
//
//   micro_algorithms [--gate] [benchmark args...]
//
// --gate: time the portable vs AVX2 NTT kernels outside the benchmark
// harness and fail (exit 1) unless the vectorized kernels clear a
// conservative speed floor; exits 0 with a note when the binary or CPU has
// no AVX2 (portable-only builds must stay green). CI runs this as the
// smoke-backend speedup step.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "crypto/backend/backend.hpp"
#include "crypto/backend/kernels.hpp"
#include "crypto/catalog.hpp"
#include "crypto/drbg.hpp"
#include "kem/kem.hpp"
#include "sig/sig.hpp"

namespace {

using pqtls::Bytes;
using pqtls::crypto::Drbg;
namespace backend = pqtls::crypto::backend;

void bm_kem_keygen(benchmark::State& state, const pqtls::kem::Kem* kem) {
  Drbg rng(1);
  for (auto _ : state) {
    auto kp = kem->generate_keypair(rng);
    benchmark::DoNotOptimize(kp.public_key.data());
  }
}

void bm_kem_encaps(benchmark::State& state, const pqtls::kem::Kem* kem) {
  Drbg rng(2);
  auto kp = kem->generate_keypair(rng);
  for (auto _ : state) {
    auto enc = kem->encapsulate(kp.public_key, rng);
    benchmark::DoNotOptimize(enc->ciphertext.data());
  }
}

void bm_kem_decaps(benchmark::State& state, const pqtls::kem::Kem* kem) {
  Drbg rng(3);
  auto kp = kem->generate_keypair(rng);
  auto enc = kem->encapsulate(kp.public_key, rng);
  for (auto _ : state) {
    auto ss = kem->decapsulate(kp.secret_key, enc->ciphertext);
    benchmark::DoNotOptimize(ss->data());
  }
}

void bm_sig_sign(benchmark::State& state, const pqtls::sig::Signer* sa) {
  Drbg rng(4);
  auto kp = sa->generate_keypair(rng);
  Bytes msg = rng.bytes(64);
  for (auto _ : state) {
    Bytes sig = sa->sign(kp.secret_key, msg, rng);
    benchmark::DoNotOptimize(sig.data());
  }
}

void bm_sig_verify(benchmark::State& state, const pqtls::sig::Signer* sa) {
  Drbg rng(5);
  auto kp = sa->generate_keypair(rng);
  Bytes msg = rng.bytes(64);
  Bytes sig = sa->sign(kp.secret_key, msg, rng);
  for (auto _ : state) {
    bool ok = sa->verify(kp.public_key, msg, sig);
    benchmark::DoNotOptimize(ok);
  }
}

// ---- backend kernel rows: portable vs vectorized, same random inputs ----

void bm_kyber_ntt(benchmark::State& state,
                  const backend::KyberKernels* kernels) {
  Drbg rng(6);
  std::int16_t poly[256];
  for (auto& c : poly) c = static_cast<std::int16_t>(rng.uniform(3329));
  for (auto _ : state) {
    kernels->ntt(poly);
    kernels->invntt(poly);  // round-trip keeps coefficients canonical
    benchmark::DoNotOptimize(poly[0]);
  }
}

void bm_dilithium_ntt(benchmark::State& state,
                      const backend::DilithiumKernels* kernels) {
  Drbg rng(7);
  std::int32_t poly[256];
  for (auto& c : poly) c = static_cast<std::int32_t>(rng.uniform(8380417));
  for (auto _ : state) {
    kernels->ntt(poly);
    kernels->invntt(poly);
    benchmark::DoNotOptimize(poly[0]);
  }
}

void bm_haraka512(benchmark::State& state,
                  const backend::HarakaKernels* kernels) {
  Drbg rng(8);
  Bytes rc = rng.bytes(640);
  std::uint8_t s[64];
  Bytes seed = rng.bytes(64);
  std::memcpy(s, seed.data(), sizeof s);
  for (auto _ : state) {
    kernels->permute512(s, rc.data());
    benchmark::DoNotOptimize(s[0]);
  }
}

// ---- batched server ops: amortized per-key work vs sequential loops ----

void bm_kem_encaps_batch(benchmark::State& state, const pqtls::kem::Kem* kem,
                         std::size_t count) {
  Drbg rng(9);
  auto kp = kem->generate_keypair(rng);
  for (auto _ : state) {
    auto batch = kem->encapsulate_batch(kp.public_key, count, rng);
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

void bm_sig_verify_batch(benchmark::State& state,
                         const pqtls::sig::Signer* sa, std::size_t count) {
  Drbg rng(10);
  auto kp = sa->generate_keypair(rng);
  std::vector<Bytes> messages, signatures;
  for (std::size_t i = 0; i < count; ++i) {
    messages.push_back(rng.bytes(64));
    signatures.push_back(sa->sign(kp.secret_key, messages.back(), rng));
  }
  std::vector<pqtls::BytesView> msg_views(messages.begin(), messages.end());
  std::vector<pqtls::BytesView> sig_views(signatures.begin(),
                                          signatures.end());
  for (auto _ : state) {
    auto verdicts = sa->verify_batch(kp.public_key, msg_views, sig_views);
    benchmark::DoNotOptimize(verdicts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

struct Registrar {
  Registrar() {
    const auto& catalog = pqtls::crypto::AlgorithmCatalog::instance();
    for (const auto& info : catalog.kems()) {
      if (info.hybrid) continue;  // hybrids = sum of their parts
      benchmark::RegisterBenchmark(("kem_keygen/" + info.name).c_str(),
                                   bm_kem_keygen, info.kem)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(("kem_encaps/" + info.name).c_str(),
                                   bm_kem_encaps, info.kem)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(("kem_decaps/" + info.name).c_str(),
                                   bm_kem_decaps, info.kem)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
    }
    for (const auto& info : catalog.signers()) {
      if (info.hybrid) continue;
      if (info.name == "rsa:4096") continue;  // keygen too slow for a micro
      if (!info.headline)
        continue;  // SPHINCS+ s-variants sign in seconds; bench/all_sphincs
      benchmark::RegisterBenchmark(("sig_sign/" + info.name).c_str(),
                                   bm_sig_sign, info.signer)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(("sig_verify/" + info.name).c_str(),
                                   bm_sig_verify, info.signer)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
    }

    // Dispatchable kernels, one row per compiled backend. cpu_supports
    // guards the registration: a binary with AVX2 kernels compiled in must
    // not execute them on a CPU without the ISA.
    benchmark::RegisterBenchmark("ntt_kyber/portable", bm_kyber_ntt,
                                 &backend::detail::kKyberPortable)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark("ntt_dilithium/portable", bm_dilithium_ntt,
                                 &backend::detail::kDilithiumPortable)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark("haraka512/portable", bm_haraka512,
                                 &backend::detail::kHarakaPortable)
        ->MinTime(0.05);
    if (backend::available(backend::Backend::kAvx2)) {
      benchmark::RegisterBenchmark("ntt_kyber/avx2", bm_kyber_ntt,
                                   backend::detail::kyber_avx2())
          ->MinTime(0.05);
      benchmark::RegisterBenchmark("ntt_dilithium/avx2", bm_dilithium_ntt,
                                   backend::detail::dilithium_avx2())
          ->MinTime(0.05);
    }
    if (backend::available(backend::Backend::kAesni)) {
      benchmark::RegisterBenchmark("haraka512/aesni", bm_haraka512,
                                   backend::detail::haraka_aesni())
          ->MinTime(0.05);
    }

    // Batched server ops against their sequential equivalents (batch 1).
    const pqtls::kem::Kem* kyber = catalog.require_kem("kyber768").kem;
    const pqtls::sig::Signer* dilithium =
        catalog.require_signer("dilithium2").signer;
    for (std::size_t count : {std::size_t{1}, std::size_t{8},
                              std::size_t{32}}) {
      benchmark::RegisterBenchmark(
          ("kem_encaps_batch/kyber768/b" + std::to_string(count)).c_str(),
          bm_kem_encaps_batch, kyber, count)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(
          ("sig_verify_batch/dilithium2/b" + std::to_string(count)).c_str(),
          bm_sig_verify_batch, dilithium, count)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
    }
  }
};
const Registrar registrar;

// --gate: time the NTT kernels outside the benchmark harness and fail
// unless AVX2 clears a conservative floor. The true speedup is far higher;
// the floor only catches regressions that erase the vectorization outright.
template <typename Poly, typename Kernels>
double ntt_roundtrips_per_second(const Kernels& kernels, Poly* poly,
                                 int iters) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    kernels.ntt(poly);
    kernels.invntt(poly);
  }
  double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(poly[0]);
  return s > 0 ? iters / s : 0;
}

int run_gate() {
  if (!backend::available(backend::Backend::kAvx2)) {
    std::printf("backend speedup gate skipped (AVX2 %s)\n",
                backend::compiled(backend::Backend::kAvx2)
                    ? "not supported by this CPU"
                    : "not compiled in");
    return 0;
  }
  constexpr int kIters = 100'000;
  constexpr double kFloor = 1.2;

  Drbg rng(11);
  std::int16_t kpoly[256];
  for (auto& c : kpoly) c = static_cast<std::int16_t>(rng.uniform(3329));
  double k_portable = ntt_roundtrips_per_second(
      backend::detail::kKyberPortable, kpoly, kIters);
  double k_avx2 = ntt_roundtrips_per_second(*backend::detail::kyber_avx2(),
                                            kpoly, kIters);

  std::int32_t dpoly[256];
  for (auto& c : dpoly) c = static_cast<std::int32_t>(rng.uniform(8380417));
  double d_portable = ntt_roundtrips_per_second(
      backend::detail::kDilithiumPortable, dpoly, kIters);
  double d_avx2 = ntt_roundtrips_per_second(
      *backend::detail::dilithium_avx2(), dpoly, kIters);

  double k_ratio = k_portable > 0 ? k_avx2 / k_portable : 0;
  double d_ratio = d_portable > 0 ? d_avx2 / d_portable : 0;
  std::printf("kyber ntt     portable %9.0f/s  avx2 %9.0f/s  %5.2fx\n",
              k_portable, k_avx2, k_ratio);
  std::printf("dilithium ntt portable %9.0f/s  avx2 %9.0f/s  %5.2fx\n",
              d_portable, d_avx2, d_ratio);
  std::printf("gate: avx2 >= %.1fx portable for both kernels\n", kFloor);
  if (k_ratio < kFloor || d_ratio < kFloor) {
    std::fprintf(stderr, "FAIL: AVX2 NTT no longer beats portable\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--gate") == 0) return run_gate();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
