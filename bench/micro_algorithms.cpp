// Per-algorithm microbenchmarks (google-benchmark): keygen / encapsulate /
// decapsulate for every KEM and keygen / sign / verify for every SA. These
// are the per-operation costs behind the paper's end-to-end latencies and
// directly support its white-box attribution (methodology supplement).
#include <benchmark/benchmark.h>

#include "crypto/drbg.hpp"
#include "kem/kem.hpp"
#include "sig/sig.hpp"

namespace {

using pqtls::Bytes;
using pqtls::crypto::Drbg;

void bm_kem_keygen(benchmark::State& state, const pqtls::kem::Kem* kem) {
  Drbg rng(1);
  for (auto _ : state) {
    auto kp = kem->generate_keypair(rng);
    benchmark::DoNotOptimize(kp.public_key.data());
  }
}

void bm_kem_encaps(benchmark::State& state, const pqtls::kem::Kem* kem) {
  Drbg rng(2);
  auto kp = kem->generate_keypair(rng);
  for (auto _ : state) {
    auto enc = kem->encapsulate(kp.public_key, rng);
    benchmark::DoNotOptimize(enc->ciphertext.data());
  }
}

void bm_kem_decaps(benchmark::State& state, const pqtls::kem::Kem* kem) {
  Drbg rng(3);
  auto kp = kem->generate_keypair(rng);
  auto enc = kem->encapsulate(kp.public_key, rng);
  for (auto _ : state) {
    auto ss = kem->decapsulate(kp.secret_key, enc->ciphertext);
    benchmark::DoNotOptimize(ss->data());
  }
}

void bm_sig_sign(benchmark::State& state, const pqtls::sig::Signer* sa) {
  Drbg rng(4);
  auto kp = sa->generate_keypair(rng);
  Bytes msg = rng.bytes(64);
  for (auto _ : state) {
    Bytes sig = sa->sign(kp.secret_key, msg, rng);
    benchmark::DoNotOptimize(sig.data());
  }
}

void bm_sig_verify(benchmark::State& state, const pqtls::sig::Signer* sa) {
  Drbg rng(5);
  auto kp = sa->generate_keypair(rng);
  Bytes msg = rng.bytes(64);
  Bytes sig = sa->sign(kp.secret_key, msg, rng);
  for (auto _ : state) {
    bool ok = sa->verify(kp.public_key, msg, sig);
    benchmark::DoNotOptimize(ok);
  }
}

struct Registrar {
  Registrar() {
    for (const auto* kem : pqtls::kem::all_kems()) {
      if (kem->is_hybrid()) continue;  // hybrids = sum of their parts
      benchmark::RegisterBenchmark(("kem_keygen/" + kem->name()).c_str(),
                                   bm_kem_keygen, kem)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(("kem_encaps/" + kem->name()).c_str(),
                                   bm_kem_encaps, kem)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(("kem_decaps/" + kem->name()).c_str(),
                                   bm_kem_decaps, kem)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
    }
    for (const auto* sa : pqtls::sig::all_signers()) {
      if (sa->is_hybrid()) continue;
      if (sa->name() == "rsa:4096") continue;  // keygen too slow for a micro
      if (sa->name().ends_with("s") && sa->name().starts_with("sphincs"))
        continue;  // s-variants sign in seconds; covered by bench/all_sphincs
      benchmark::RegisterBenchmark(("sig_sign/" + sa->name()).c_str(),
                                   bm_sig_sign, sa)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(("sig_verify/" + sa->name()).c_str(),
                                   bm_sig_verify, sa)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
    }
  }
};
const Registrar registrar;

}  // namespace

BENCHMARK_MAIN();
