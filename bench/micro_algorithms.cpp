// Per-algorithm microbenchmarks (google-benchmark): keygen / encapsulate /
// decapsulate for every KEM and keygen / sign / verify for every SA. These
// are the per-operation costs behind the paper's end-to-end latencies and
// directly support its white-box attribution (methodology supplement).
#include <benchmark/benchmark.h>

#include "crypto/catalog.hpp"
#include "crypto/drbg.hpp"
#include "kem/kem.hpp"
#include "sig/sig.hpp"

namespace {

using pqtls::Bytes;
using pqtls::crypto::Drbg;

void bm_kem_keygen(benchmark::State& state, const pqtls::kem::Kem* kem) {
  Drbg rng(1);
  for (auto _ : state) {
    auto kp = kem->generate_keypair(rng);
    benchmark::DoNotOptimize(kp.public_key.data());
  }
}

void bm_kem_encaps(benchmark::State& state, const pqtls::kem::Kem* kem) {
  Drbg rng(2);
  auto kp = kem->generate_keypair(rng);
  for (auto _ : state) {
    auto enc = kem->encapsulate(kp.public_key, rng);
    benchmark::DoNotOptimize(enc->ciphertext.data());
  }
}

void bm_kem_decaps(benchmark::State& state, const pqtls::kem::Kem* kem) {
  Drbg rng(3);
  auto kp = kem->generate_keypair(rng);
  auto enc = kem->encapsulate(kp.public_key, rng);
  for (auto _ : state) {
    auto ss = kem->decapsulate(kp.secret_key, enc->ciphertext);
    benchmark::DoNotOptimize(ss->data());
  }
}

void bm_sig_sign(benchmark::State& state, const pqtls::sig::Signer* sa) {
  Drbg rng(4);
  auto kp = sa->generate_keypair(rng);
  Bytes msg = rng.bytes(64);
  for (auto _ : state) {
    Bytes sig = sa->sign(kp.secret_key, msg, rng);
    benchmark::DoNotOptimize(sig.data());
  }
}

void bm_sig_verify(benchmark::State& state, const pqtls::sig::Signer* sa) {
  Drbg rng(5);
  auto kp = sa->generate_keypair(rng);
  Bytes msg = rng.bytes(64);
  Bytes sig = sa->sign(kp.secret_key, msg, rng);
  for (auto _ : state) {
    bool ok = sa->verify(kp.public_key, msg, sig);
    benchmark::DoNotOptimize(ok);
  }
}

struct Registrar {
  Registrar() {
    const auto& catalog = pqtls::crypto::AlgorithmCatalog::instance();
    for (const auto& info : catalog.kems()) {
      if (info.hybrid) continue;  // hybrids = sum of their parts
      benchmark::RegisterBenchmark(("kem_keygen/" + info.name).c_str(),
                                   bm_kem_keygen, info.kem)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(("kem_encaps/" + info.name).c_str(),
                                   bm_kem_encaps, info.kem)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(("kem_decaps/" + info.name).c_str(),
                                   bm_kem_decaps, info.kem)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
    }
    for (const auto& info : catalog.signers()) {
      if (info.hybrid) continue;
      if (info.name == "rsa:4096") continue;  // keygen too slow for a micro
      if (!info.headline)
        continue;  // SPHINCS+ s-variants sign in seconds; bench/all_sphincs
      benchmark::RegisterBenchmark(("sig_sign/" + info.name).c_str(),
                                   bm_sig_sign, info.signer)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(("sig_verify/" + info.name).c_str(),
                                   bm_sig_verify, info.signer)
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
    }
  }
};
const Registrar registrar;

}  // namespace

BENCHMARK_MAIN();
