// Reproduces Table 2a: handshake latency (median, split into part A
// [CH -> SH] and part B [SH -> Client Finished]), the number of handshakes
// completed in a 60 s period, and per-handshake data volumes — for all 23
// key agreements combined with rsa:2048 as the signature algorithm.
//
// A thin declaration over the campaign engine: the cell matrix lives in
// src/campaign/campaign.cpp; argv[1] overrides the sample count, argv[2]
// names an optional JSONL output file, PQTLS_WORKERS parallelizes.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return pqtls::bench::run_declared_campaign("table2a", argc, argv, 25);
}
