// Reproduces Table 2a: handshake latency (median, split into part A
// [CH -> SH] and part B [SH -> Client Finished]), the number of handshakes
// completed in a 60 s period, and per-handshake data volumes — for all 23
// key agreements combined with rsa:2048 as the signature algorithm.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = bench::sample_count(argc, argv, 25);

  std::printf(
      "Table 2a: KAs combined with rsa:2048 as SA (%d sampled handshakes "
      "per row)\n",
      samples);
  std::printf("%-4s %-16s %10s %10s %8s %10s %10s\n", "Lvl", "KA",
              "A med(ms)", "B med(ms)", "# Total", "Client(B)", "Server(B)");

  for (const auto& row : bench::table2a_kas()) {
    testbed::ExperimentConfig config;
    config.ka = row.name;
    config.sa = "rsa:2048";
    config.sample_handshakes = samples;
    testbed::ExperimentResult r = testbed::run_experiment(config);
    if (!r.ok) {
      std::printf("%-4d %-16s FAILED\n", row.level, row.name);
      continue;
    }
    std::printf("%-4d %-16s %10.2f %10.2f %7.1fk %10zu %10zu\n", row.level,
                row.name, r.median_part_a * 1e3, r.median_part_b * 1e3,
                static_cast<double>(r.total_handshakes_60s) / 1000.0, r.client_bytes,
                r.server_bytes);
  }
  return 0;
}
