// Reproduces Table 2b: handshake latency parts, 60 s handshake count, and
// data volumes for all 23 signature algorithms combined with X25519 as the
// key agreement.
//
// A thin declaration over the campaign engine: the cell matrix lives in
// src/campaign/campaign.cpp; argv[1] overrides the sample count, argv[2]
// names an optional JSONL output file, PQTLS_WORKERS parallelizes.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return pqtls::bench::run_declared_campaign("table2b", argc, argv, 15);
}
