// Reproduces Table 2b: handshake latency parts, 60 s handshake count, and
// data volumes for all 22 signature algorithms (plus the rsa3072_dilithium2
// hybrid) combined with X25519 as the key agreement.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = bench::sample_count(argc, argv, 15);

  std::printf(
      "Table 2b: SAs combined with x25519 as KA (%d sampled handshakes per "
      "row)\n",
      samples);
  std::printf("%-4s %-18s %10s %10s %8s %10s %10s\n", "Lvl", "SA",
              "A med(ms)", "B med(ms)", "# Total", "Client(B)", "Server(B)");

  for (const auto& row : bench::table2b_sas()) {
    testbed::ExperimentConfig config;
    config.ka = "x25519";
    config.sa = row.name;
    config.sample_handshakes = samples;
    testbed::ExperimentResult r = testbed::run_experiment(config);
    if (!r.ok) {
      std::printf("%-4d %-18s FAILED\n", row.level, row.name);
      continue;
    }
    std::printf("%-4d %-18s %10.2f %10.2f %7.1fk %10zu %10zu\n", row.level,
                row.name, r.median_part_a * 1e3, r.median_part_b * 1e3,
                static_cast<double>(r.total_handshakes_60s) / 1000.0, r.client_bytes,
                r.server_bytes);
  }
  return 0;
}
