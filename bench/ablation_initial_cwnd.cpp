// Ablation for the paper's closing recommendation: "We expect the initial
// CWND will become an important tuning factor for TLS servers to retain the
// ability for 1-RTT handshakes." Sweeps the TCP initial congestion window
// for representative SAs under the 1 s RTT scenario and shows how a larger
// IW restores single-round-trip handshakes for large PQ flights.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = bench::sample_count(argc, argv, 5);

  static const char* kSas[] = {"rsa:2048",   "falcon512",  "dilithium2",
                               "dilithium5", "sphincs128", "sphincs256"};
  static const std::size_t kWindows[] = {3, 10, 20, 40, 80};

  std::printf("Ablation: TCP initial congestion window vs handshake RTTs "
              "(1 s RTT scenario, KA = x25519, %d samples per cell)\n\n",
              samples);
  std::printf("Median full-handshake latency in ms (RTT multiples in "
              "parentheses):\n");
  std::printf("%-12s", "SA \\ IW");
  for (std::size_t iw : kWindows) std::printf(" %14zu", iw);
  std::printf("\n");

  for (const char* sa : kSas) {
    std::printf("%-12s", sa);
    for (std::size_t iw : kWindows) {
      testbed::ExperimentConfig config;
      config.ka = "x25519";
      config.sa = sa;
      config.netem.delay_s = 0.5;  // 1 s RTT
      config.initial_cwnd_segments = iw;
      config.sample_handshakes = samples;
      auto r = testbed::run_experiment(config);
      if (r.ok)
        std::printf(" %9.0f (%.0fx)", r.median_total * 1e3,
                    r.median_total / 1.0);
      else
        std::printf(" %14s", "FAIL");
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nReading: IW10 (the Linux default) forces SPHINCS+ flights "
              "into 2-4 RTTs; raising the\ninitial window to ~40 segments "
              "restores 1-RTT handshakes for every algorithm here.\n");
  return 0;
}
