// Shared helpers for the table/figure reproduction binaries. The algorithm
// matrix itself lives in src/campaign/matrix.hpp (shared with the campaign
// engine); the aliases below keep the bench binaries' spelling.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "campaign/matrix.hpp"
#include "campaign/options.hpp"
#include "campaign/runner.hpp"
#include "campaign/sinks.hpp"
#include "crypto/catalog.hpp"
#include "testbed/testbed.hpp"

namespace pqtls::bench {

/// Sample count per configuration; override with argv[1] or PQTLS_SAMPLES.
/// Malformed overrides warn on stderr and keep `fallback` (never the old
/// silent atoi-zero).
inline int sample_count(int argc, char** argv, int fallback) {
  if (argc > 1)
    return campaign::positive_int_or(argv[1], fallback,
                                     "sample count (argv[1])");
  return campaign::env_samples(fallback);
}

/// Render a proportional ASCII bar (the paper's tables embed bar charts).
inline std::string bar(double value, double max_value, int width = 12) {
  if (max_value <= 0) return "";
  int filled = static_cast<int>(value / max_value * width + 0.5);
  if (filled > width) filled = width;
  std::string out(filled, '#');
  out.resize(width, ' ');
  return out;
}

/// Run a named campaign the way the historical bench binaries did: the
/// paper-fidelity measured clock, sample override from argv[1] or
/// PQTLS_SAMPLES, worker count from PQTLS_WORKERS (default 1), ASCII table
/// on stdout, and optional JSONL rows to the path in argv[2]. Returns the
/// process exit code (0 = all cells ok, 2 = some cell failed).
inline int run_declared_campaign(const char* campaign_name, int argc,
                                 char** argv, int default_samples) {
  const campaign::CampaignSpec* spec = campaign::find_campaign(campaign_name);
  if (!spec) {
    std::fprintf(stderr, "unknown campaign '%s'\n", campaign_name);
    return 1;
  }
  // Resolve every cell's algorithm pair up front through the catalog so a
  // bad name fails before any work, with the canonical valid-names error.
  try {
    const auto& catalog = crypto::AlgorithmCatalog::instance();
    for (const auto& cell : spec->cells) {
      catalog.require_kem(cell.config.ka);
      catalog.require_signer(cell.config.sa);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign '%s': %s\n", campaign_name, e.what());
    return 1;
  }
  campaign::RunnerOptions opts;
  opts.samples = sample_count(argc, argv, default_samples);
  opts.workers = campaign::env_workers(1);
  opts.time_model = testbed::TimeModel::kMeasured;  // paper-fidelity clock

  campaign::AsciiSink ascii(std::cout);
  std::vector<campaign::Sink*> sinks{&ascii};
  std::ofstream jsonl_file;
  std::optional<campaign::JsonlSink> jsonl;
  if (argc > 2) {
    jsonl_file.open(argv[2]);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", argv[2]);
      return 1;
    }
    jsonl.emplace(jsonl_file);
    sinks.push_back(&*jsonl);
  }
  return campaign::run_campaign(*spec, opts, sinks) == 0 ? 0 : 2;
}

using KaRow = campaign::AlgRow;
using SaRow = campaign::AlgRow;
using LevelCombos = campaign::LevelCombos;

inline const std::vector<KaRow>& table2a_kas() {
  return campaign::table2a_kas();
}
inline const std::vector<SaRow>& table2b_sas() {
  return campaign::table2b_sas();
}
inline const std::vector<LevelCombos>& fig3_levels() {
  return campaign::fig3_levels();
}

}  // namespace pqtls::bench
