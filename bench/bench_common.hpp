// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "testbed/testbed.hpp"

namespace pqtls::bench {

/// Sample count per configuration; override with argv[1] or PQTLS_SAMPLES.
inline int sample_count(int argc, char** argv, int fallback) {
  if (argc > 1) return std::atoi(argv[1]);
  if (const char* env = std::getenv("PQTLS_SAMPLES")) return std::atoi(env);
  return fallback;
}

/// Render a proportional ASCII bar (the paper's tables embed bar charts).
inline std::string bar(double value, double max_value, int width = 12) {
  if (max_value <= 0) return "";
  int filled = static_cast<int>(value / max_value * width + 0.5);
  if (filled > width) filled = width;
  std::string out(filled, '#');
  out.resize(width, ' ');
  return out;
}

/// The paper's KA list (Table 2a), grouped by NIST level.
struct KaRow {
  int level;
  const char* name;
};
inline const std::vector<KaRow>& table2a_kas() {
  static const std::vector<KaRow> rows = {
      {1, "x25519"},        {1, "bikel1"},        {1, "hqc128"},
      {1, "kyber512"},      {1, "kyber90s512"},   {1, "p256"},
      {1, "p256_bikel1"},   {1, "p256_hqc128"},   {1, "p256_kyber512"},
      {3, "bikel3"},        {3, "hqc192"},        {3, "kyber768"},
      {3, "kyber90s768"},   {3, "p384"},          {3, "p384_bikel3"},
      {3, "p384_hqc192"},   {3, "p384_kyber768"}, {5, "hqc256"},
      {5, "kyber1024"},     {5, "kyber90s1024"},  {5, "p521"},
      {5, "p521_hqc256"},   {5, "p521_kyber1024"},
  };
  return rows;
}

/// The paper's SA list (Table 2b), grouped by NIST level (0 = sub-level-1).
struct SaRow {
  int level;
  const char* name;
};
inline const std::vector<SaRow>& table2b_sas() {
  static const std::vector<SaRow> rows = {
      {0, "rsa:1024"},        {0, "rsa:2048"},
      {1, "falcon512"},       {1, "rsa:3072"},
      {1, "rsa:4096"},        {1, "sphincs128"},
      {1, "p256_falcon512"},  {1, "p256_sphincs128"},
      {2, "dilithium2"},      {2, "dilithium2_aes"},
      {2, "p256_dilithium2"},
      {3, "dilithium3"},      {3, "dilithium3_aes"},
      {3, "sphincs192"},      {3, "p384_dilithium3"},
      {3, "p384_sphincs192"},
      {5, "dilithium5"},      {5, "dilithium5_aes"},
      {5, "falcon1024"},      {5, "sphincs256"},
      {5, "p521_dilithium5"}, {5, "p521_falcon1024"},
      {5, "p521_sphincs256"},
  };
  return rows;
}

/// Non-hybrid KA x SA combinations per level group for Figure 3 (the paper
/// groups NIST levels one and two, uses only rsa:3072 among the RSAs).
struct LevelCombos {
  const char* label;
  std::vector<const char*> kas;
  std::vector<const char*> sas;
};
inline const std::vector<LevelCombos>& fig3_levels() {
  static const std::vector<LevelCombos> levels = {
      {"level1+2",
       {"x25519", "bikel1", "hqc128", "kyber512", "kyber90s512", "p256"},
       {"rsa:3072", "falcon512", "sphincs128", "dilithium2", "dilithium2_aes"}},
      {"level3",
       {"bikel3", "hqc192", "kyber768", "kyber90s768", "p384"},
       {"dilithium3", "dilithium3_aes", "sphincs192"}},
      {"level5",
       {"hqc256", "kyber1024", "kyber90s1024", "p521"},
       {"dilithium5", "dilithium5_aes", "falcon1024", "sphincs256"}},
  };
  return levels;
}

}  // namespace pqtls::bench
