// Reproduces Table 3: white-box measurements for the paper's selected
// KA/SA pairs — handshake rate, CPU cost per handshake on server and
// client, per-library CPU distribution (libcrypto / kernel / libssl / libc /
// ixgbe / python), and packets sent per handshake.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = bench::sample_count(argc, argv, 12);

  struct Pair {
    const char* level;
    const char* ka;
    const char* sa;
  };
  // The paper's Table 3 selection.
  static constexpr Pair kPairs[] = {
      {"<=2", "x25519", "rsa:2048"},
      {"<=2", "kyber512", "dilithium2"},
      {"<=2", "bikel1", "dilithium2"},
      {"<=2", "kyber512", "sphincs128"},
      {"<=2", "hqc128", "falcon512"},
      {"<=2", "p256_kyber512", "p256_dilithium2"},
      {"3", "kyber768", "dilithium3"},
      {"5", "kyber1024", "dilithium5"},
  };

  std::printf("Table 3: white-box measurements (%d sampled handshakes per "
              "row)\n\n",
              samples);
  std::printf("%-4s %-15s %-17s %6s | %9s %9s | %8s %8s\n", "Lvl", "KA", "SA",
              "HS[1/s]", "SrvCPU ms", "CliCPU ms", "SrvPkts", "CliPkts");

  std::vector<testbed::ExperimentResult> results;
  for (const auto& pair : kPairs) {
    testbed::ExperimentConfig config;
    config.ka = pair.ka;
    config.sa = pair.sa;
    config.white_box = true;
    config.sample_handshakes = samples;
    testbed::ExperimentResult r = testbed::run_experiment(config);
    if (!r.ok) {
      std::printf("%-4s %-15s %-17s FAILED\n", pair.level, pair.ka, pair.sa);
      continue;
    }
    std::printf("%-4s %-15s %-17s %6.0f | %9.2f %9.2f | %8.1f %8.1f\n",
                pair.level, pair.ka, pair.sa, r.handshakes_per_second,
                r.server_cpu_ms, r.client_cpu_ms, r.server_packets,
                r.client_packets);
    results.push_back(std::move(r));
  }

  std::printf("\nLibrary distribution (%% of CPU time per side)\n");
  std::printf("%-34s | %-42s | %-42s\n", "", "server", "client");
  std::printf("%-15s %-18s |", "KA", "SA");
  for (int side = 0; side < 2; ++side) {
    for (int lib = 0; lib < static_cast<int>(perf::Lib::kCount); ++lib)
      std::printf(" %6.6s", std::string(perf::lib_name(
                                static_cast<perf::Lib>(lib)))
                                .c_str());
    std::printf(" |");
  }
  std::printf("\n");
  for (const auto& r : results) {
    std::printf("%-15s %-18s |", r.ka.c_str(), r.sa.c_str());
    for (int lib = 0; lib < static_cast<int>(perf::Lib::kCount); ++lib)
      std::printf(" %5.1f%%", r.server_shares.share[lib] * 100);
    std::printf(" |");
    for (int lib = 0; lib < static_cast<int>(perf::Lib::kCount); ++lib)
      std::printf(" %5.1f%%", r.client_shares.share[lib] * 100);
    std::printf(" |\n");
  }
  return 0;
}
