// Reproduces Table 4a: median full-handshake latency for all 23 KAs
// (with rsa:2048 as SA) under the paper's emulated network scenarios:
// no emulation, 10% loss, 1 Mbit/s, 1 s RTT, LTE-M (15 km), and 5G.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pqtls;
  int samples = bench::sample_count(argc, argv, 9);
  const auto& scenarios = testbed::standard_scenarios();

  std::printf("Table 4a: KAs x network scenarios, median full-handshake "
              "latency in ms (%d samples per cell)\n",
              samples);
  std::printf("%-4s %-16s", "Lvl", "KA");
  for (const auto& s : scenarios) std::printf(" %12.12s", s.name.c_str());
  std::printf("\n");

  for (const auto& row : bench::table2a_kas()) {
    std::printf("%-4d %-16s", row.level, row.name);
    for (const auto& scenario : scenarios) {
      testbed::ExperimentConfig config;
      config.ka = row.name;
      config.sa = "rsa:2048";
      config.netem = scenario.netem;
      config.sample_handshakes = samples;
      testbed::ExperimentResult r = testbed::run_experiment(config);
      if (r.ok)
        std::printf(" %12.2f", r.median_total * 1e3);
      else
        std::printf(" %12s", "FAIL");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
