// Reproduces Table 4a: median full-handshake latency for all 23 KAs
// (with rsa:2048 as SA) under the paper's emulated network scenarios:
// no emulation, 10% loss, 1 Mbit/s, 1 s RTT, LTE-M (15 km), and 5G.
//
// A thin declaration over the campaign engine (scenario-matrix ASCII
// layout): argv[1] overrides the sample count, argv[2] names an optional
// JSONL output file, PQTLS_WORKERS parallelizes.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return pqtls::bench::run_declared_campaign("table4a", argc, argv, 9);
}
